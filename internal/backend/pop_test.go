package backend

import (
	"context"
	"math"
	"testing"
	"time"

	"ras/internal/metrics"
	"ras/internal/solver"
)

// popRun is the full comparable outcome of one pop solve: the assignment plus
// every piece of backend detail that must be invariant under the Workers knob.
type popRun struct {
	status   Status
	obj      float64
	planSig  uint64
	repair   solver.RepairStats
	moves    solver.MoveStats
	targets  string
	subWkrs  int
	nPartits int
}

func solvePOP(t *testing.T, in solver.Input, opts Options) (popRun, *Result) {
	t.Helper()
	be, err := New("pop", Config{Solver: solver.Config{
		Phase1TimeLimit: 20 * time.Second, Phase2TimeLimit: 5 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.POP == nil {
		t.Fatal("pop result carries no POP detail")
	}
	buf := make([]byte, 0, 4*len(res.Targets))
	for _, id := range res.Targets {
		buf = append(buf, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return popRun{
		status:   res.Status,
		obj:      res.Objective,
		planSig:  res.POP.PlanSig,
		repair:   res.POP.Repair,
		moves:    res.Moves,
		targets:  string(buf),
		subWkrs:  res.POP.SubWorkers,
		nPartits: res.POP.Partitions,
	}, res
}

// TestPOPDeterministicAcrossWorkers mirrors internal/mip/determinism_test.go
// for the partitioned backend, but with a stronger bar: because every
// sub-solve runs the exact serial engine whenever Workers ≤ Partitions, the
// final assignment must be bit-for-bit identical across Workers ∈ {1, 2, 4}
// and across repeated runs — not merely equal within tolerance. Only the
// goroutine-to-partition mapping changes with Workers, and each partition's
// answer is a pure function of its own inputs.
func TestPOPDeterministicAcrossWorkers(t *testing.T) {
	in := testInput(t, 11, 5, 4)
	base, res := solvePOP(t, in, Options{Workers: 1, Partitions: 3})
	if base.status != StatusFeasible {
		t.Fatalf("serial pop solve status %v, want feasible", base.status)
	}
	if base.nPartits != 3 {
		t.Fatalf("effective partitions %d, want 3", base.nPartits)
	}
	checkTargets(t, in, res)

	again, _ := solvePOP(t, in, Options{Workers: 1, Partitions: 3})
	if again != base {
		t.Fatalf("Workers=1 not deterministic across runs:\n%+v\nvs\n%+v", base, again)
	}
	for _, w := range []int{2, 4} {
		run, _ := solvePOP(t, in, Options{Workers: w, Partitions: 3})
		if run.subWkrs != 1 {
			t.Fatalf("Workers=%d: sub-solves ran with %d workers, want the exact serial engine", w, run.subWkrs)
		}
		if run != base {
			t.Fatalf("Workers=%d result differs from Workers=1:\n%+v\nvs\n%+v", w, run, base)
		}
	}
}

// TestPOPObjectiveMatchesEvaluate pins the objective contract: the pop
// Result.Objective is the region-wide phase-1 functional of the merged
// assignment (solver.Evaluate), never the sum of sub-objectives — summing
// would count k embedded-buffer envelopes instead of one.
func TestPOPObjectiveMatchesEvaluate(t *testing.T) {
	in := testInput(t, 12, 4, 4)
	_, res := solvePOP(t, in, Options{Workers: 1, Partitions: 2})
	ev := solver.Evaluate(in, solver.Config{}, res.Targets)
	if math.Abs(ev.Objective-res.Objective) > 1e-9 {
		t.Fatalf("Result.Objective %v != Evaluate %v on the merged targets", res.Objective, ev.Objective)
	}
	var sum float64
	for _, sub := range res.POP.Subs {
		sum += sub.Phase1.Objective
	}
	if res.Objective > sum+1e-9 {
		t.Errorf("merged objective %v exceeds sub-objective sum %v: repair made things worse", res.Objective, sum)
	}
}

// TestDivideWorkers pins the budget-division rule the Options.Workers doc
// promises: pop divides the budget across sub-solves, never multiplies, and
// perSub×concurrent never exceeds max(w, k-clamped limits).
func TestDivideWorkers(t *testing.T) {
	for _, tc := range []struct {
		w, k               int
		perSub, concurrent int
	}{
		{w: 1, k: 4, perSub: 1, concurrent: 1},
		{w: 2, k: 4, perSub: 1, concurrent: 2},
		{w: 4, k: 4, perSub: 1, concurrent: 4},
		{w: 8, k: 4, perSub: 2, concurrent: 4},
		{w: 9, k: 4, perSub: 2, concurrent: 4},
		{w: 16, k: 4, perSub: 4, concurrent: 4},
		{w: 4, k: 8, perSub: 1, concurrent: 4},
		{w: 1, k: 1, perSub: 1, concurrent: 1},
		{w: 6, k: 1, perSub: 6, concurrent: 1},
		{w: 0, k: 4, perSub: 1, concurrent: 1},
		{w: 3, k: 0, perSub: 3, concurrent: 1},
	} {
		perSub, concurrent := divideWorkers(tc.w, tc.k)
		if perSub != tc.perSub || concurrent != tc.concurrent {
			t.Errorf("divideWorkers(%d, %d) = (%d, %d), want (%d, %d)",
				tc.w, tc.k, perSub, concurrent, tc.perSub, tc.concurrent)
		}
		if tc.w >= 1 && perSub*concurrent > tc.w && concurrent > 1 {
			t.Errorf("divideWorkers(%d, %d) oversubscribes: %d×%d > budget",
				tc.w, tc.k, perSub, concurrent)
		}
	}
}

// TestPOPWarmStateRoundTrip checks the warm-start keying: threading the
// previous round's Warm back in hits every partition's warm state when the
// plan signature matches, and a differently partitioned round (new k → new
// signature) solves cold instead of consuming stale bases.
func TestPOPWarmStateRoundTrip(t *testing.T) {
	in := testInput(t, 13, 4, 4)
	_, first := solvePOP(t, in, Options{Workers: 1, Partitions: 2})
	if first.Warm == nil || first.Warm.POP == nil {
		t.Fatal("pop solve exported no warm state")
	}
	if first.Warm.POP.Sig != first.POP.PlanSig {
		t.Fatalf("warm Sig %#x != plan Sig %#x", first.Warm.POP.Sig, first.POP.PlanSig)
	}
	if len(first.Warm.POP.Parts) != first.POP.Partitions {
		t.Fatalf("warm state has %d parts for %d partitions", len(first.Warm.POP.Parts), first.POP.Partitions)
	}

	h0, m0 := metrics.Solver.PartitionWarmHits.Value(), metrics.Solver.PartitionWarmMisses.Value()
	warmed, second := solvePOP(t, in, Options{Workers: 1, Partitions: 2, Warm: first.Warm})
	hits := metrics.Solver.PartitionWarmHits.Value() - h0
	if hits != int64(second.POP.Partitions) {
		t.Errorf("same-plan warm round hit %d partitions, want all %d", hits, second.POP.Partitions)
	}
	// Warm starts may legitimately re-break branch-and-bound ties, so only the
	// repeat of the same warm round must be bit-identical; against the cold
	// round the objective must not degrade.
	rewarmed, _ := solvePOP(t, in, Options{Workers: 1, Partitions: 2, Warm: first.Warm})
	if warmed != rewarmed {
		t.Fatalf("warm-started solve not deterministic:\n%+v\nvs\n%+v", warmed, rewarmed)
	}
	cold, _ := solvePOP(t, in, Options{Workers: 1, Partitions: 2})
	if warmed.obj > cold.obj+1e-6 {
		t.Fatalf("warm-started objective %v worse than cold %v", warmed.obj, cold.obj)
	}

	h0, m0 = metrics.Solver.PartitionWarmHits.Value(), metrics.Solver.PartitionWarmMisses.Value()
	_, third := solvePOP(t, in, Options{Workers: 1, Partitions: 3, Warm: first.Warm})
	if got := metrics.Solver.PartitionWarmHits.Value() - h0; got != 0 {
		t.Errorf("plan-signature mismatch still hit %d warm states", got)
	}
	if miss := metrics.Solver.PartitionWarmMisses.Value() - m0; miss != int64(third.POP.Partitions) {
		t.Errorf("mismatched round recorded %d misses, want %d", miss, third.POP.Partitions)
	}
	if third.Warm.POP.Sig == first.Warm.POP.Sig {
		t.Error("k=2 and k=3 rounds share a plan signature")
	}
	// Foreign warm fields must survive the pop round (backend-switch contract).
	if third.Warm.MIP != first.Warm.MIP {
		t.Error("pop round dropped the foreign MIP warm state")
	}
}

// TestCancelPOPMidSolve checks the package cancellation contract for the
// partitioned path: cancelling mid-solve returns promptly with the merged
// incumbents (repair is skipped), StatusCancelled, and no error.
func TestCancelPOPMidSolve(t *testing.T) {
	in := testInput(t, 14, 8, 10)
	be, err := New("pop", Config{Solver: solver.Config{
		Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 30 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()

	start := time.Now()
	res, err := be.Solve(ctx, in, Options{Workers: 2, Partitions: 3})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled solve returned error: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v after explicit cancel (solve took %v), want %v",
			res.Status, elapsed, StatusCancelled)
	}
	if over := elapsed - 30*time.Millisecond; over > 400*time.Millisecond {
		t.Fatalf("solve returned %v after cancellation, want prompt stop", over)
	}
	checkTargetsShape(t, in, res)
	if res.POP == nil {
		t.Fatal("cancelled pop solve carries no POP detail")
	}
	if res.POP.Repair.Moves() != 0 {
		t.Errorf("cancelled round still ran %d repair moves", res.POP.Repair.Moves())
	}
}
