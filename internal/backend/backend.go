// Package backend defines the pluggable solver-backend seam of the RAS
// continuous optimizer. The paper's ReBalancer (§6) is "a common
// optimization library" that "can choose different backend solvers to solve
// an optimization problem": RAS uses the two-phase MIP solver for placement
// quality, while near-realtime users pick a local-search solver. This
// package is that seam — one Backend interface, one common Result shape,
// and a registry mapping backend names to constructors — so that every
// production caller (the ras.System façade, the CLIs, the experiment
// runners) selects a solver by name instead of hard-wiring a code path.
//
// The cancellation contract: Backend.Solve takes a context.Context that
// bounds the entire solve. Cancellation propagates cooperatively down the
// whole stack (branch-and-bound nodes, simplex iteration loops, local-search
// steps); a cancelled solve is NOT an error — it returns promptly with the
// best incumbent assignment found so far and Status StatusCancelled, so a
// supervisor can always apply the most recent targets it has.
package backend

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"ras/internal/clock"
	"ras/internal/localsearch"
	"ras/internal/mip"
	"ras/internal/reservation"
	"ras/internal/solver"
)

// Options are the backend-independent per-solve knobs. Backend-specific
// tuning lives in Config and is fixed at construction time; Options varies
// per call.
type Options struct {
	// TimeLimit bounds the whole solve. Zero keeps each backend's
	// configured/default budget. A ctx deadline earlier than TimeLimit wins
	// either way; Solve implementations derive their internal deadlines from
	// the context.
	TimeLimit time.Duration
	// Workers caps one solve's parallelism: branch-and-bound workers for
	// the MIP backend, independent climb starts for local search, and the
	// total budget the pop backend divides across its concurrent sub-solves
	// (never multiplies — `-workers 4 -partitions 4` runs 4 serial
	// sub-solves, not 16 threads). Zero means runtime.NumCPU() — backends
	// exploit the whole machine unless told otherwise; 1 forces the exact
	// serial engines.
	Workers int
	// Partitions is the pop backend's sub-region count k (clamped to the
	// region's MSB count). Zero means DefaultPartitions. Other backends
	// ignore it.
	Partitions int
	// Warm carries cross-round warm-start state: pass the previous round's
	// Result.Warm so consecutive solves of the continuous-optimization loop
	// amortize work (root-LP bases for the MIP backend, the last assignment
	// for local search). nil — or state from a differently shaped problem —
	// solves cold. Each backend reads only its own field, so one WarmState
	// can be threaded through rounds that switch backends.
	Warm *WarmState
}

// WarmState is the backend-independent container for cross-round warm-start
// state. A backend populates its own field in Result.Warm and consumes the
// same field from Options.Warm; foreign fields pass through untouched.
type WarmState struct {
	// MIP is the two-phase solver's persisted root bases.
	MIP *solver.WarmState
	// LocalSearch is the last local-search assignment.
	LocalSearch *localsearch.WarmState
	// POP is the partitioned backend's per-partition warm state.
	POP *POPWarm
}

// workers resolves the Workers knob: zero → NumCPU, floor 1.
func (o Options) workers() int {
	w := o.Workers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Backend is one interchangeable optimization engine producing a full
// server-to-reservation assignment from a solve snapshot.
type Backend interface {
	// Name reports the registry name of the backend.
	Name() string
	// Solve runs one optimization round. It honours ctx per the package
	// cancellation contract: cancellation returns the best incumbent with
	// Status StatusCancelled rather than an error.
	Solve(ctx context.Context, in solver.Input, opts Options) (*Result, error)
}

// Status classifies a backend solve outcome.
type Status int8

// Solve outcomes.
const (
	// StatusOptimal means the backend proved its assignment optimal within
	// its tolerances.
	StatusOptimal Status = iota
	// StatusFeasible means a valid assignment exists but the search stopped
	// on a time/step budget; Gap (when finite) quantifies the uncertainty.
	StatusFeasible
	// StatusCancelled means the context was cancelled mid-solve; Targets
	// hold the best incumbent found before the stop.
	StatusCancelled
	// StatusNoSolution means the backend produced no usable assignment.
	StatusNoSolution
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusCancelled:
		return "cancelled"
	case StatusNoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// Result is the backend-independent outcome of one solve: the assignment
// plus the quality statistics every backend can report. Backend-specific
// detail (phase breakdowns, step counts) rides along in exactly one of the
// typed detail fields.
type Result struct {
	// Backend is the name of the backend that produced the result.
	Backend string
	// Status classifies the outcome; StatusCancelled still carries targets.
	Status Status
	// Targets maps every server to its target reservation
	// (reservation.Unassigned for the free pool, reservation.SharedBuffer
	// for the shared random-failure buffer).
	Targets []reservation.ID
	// Moves counts the server moves the assignment implies (Figure 16).
	Moves solver.MoveStats
	// Objective is the backend's internal objective at Targets.
	Objective float64
	// Bound is the best proven lower bound on the optimum; -Inf when the
	// backend proves none (local search never does).
	Bound float64
	// Gap is Objective − Bound (+Inf when no bound was proven).
	Gap float64
	// Elapsed is the solve wall-clock time.
	Elapsed time.Duration

	// MIP carries the two-phase solver detail; set iff the MIP backend ran.
	MIP *solver.Result
	// LocalSearch carries the search detail; set iff that backend ran.
	LocalSearch *localsearch.Result
	// POP carries the partitioned backend detail; set iff that backend ran.
	POP *POPDetail

	// Warm is the cross-round warm-start state to feed the next round's
	// Options.Warm. It starts from the state passed in (so foreign backends'
	// fields survive a backend switch) with this backend's field updated.
	Warm *WarmState
}

// Config carries the tuning for every registered backend; each factory
// reads the part it understands, so one Config can construct any backend.
type Config struct {
	// Solver tunes the two-phase MIP backend.
	Solver solver.Config
	// LocalSearch tunes the local-search backend.
	LocalSearch localsearch.Config
}

// Factory constructs a configured Backend.
type Factory func(cfg Config) Backend

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// DefaultName is the backend the façade uses when none is selected: the
// two-phase MIP, the solver RAS itself runs in production.
const DefaultName = "mip"

// Register installs a backend factory under name. Registering a duplicate
// name panics: backend names are a flat global namespace and a silent
// overwrite would reroute every caller of that name.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("backend: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named backend from cfg. An empty name selects
// DefaultName. Unknown names report the registered alternatives, a §5.3
// operability courtesy.
func New(name string, cfg Config) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %v)", name, Names())
	}
	return f(cfg), nil
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("mip", func(cfg Config) Backend { return &mipBackend{cfg: cfg.Solver} })
	Register("localsearch", func(cfg Config) Backend { return &localSearchBackend{cfg: cfg.LocalSearch} })
	Register("pop", func(cfg Config) Backend { return &popBackend{cfg: cfg.Solver} })
}

// nextWarm derives the warm state a solve hands to the next round: a copy of
// the incoming state (so a backend switch preserves the other backends'
// fields) with this backend's field set.
func nextWarm(prev *WarmState, set func(*WarmState)) *WarmState {
	w := &WarmState{}
	if prev != nil {
		*w = *prev
	}
	set(w)
	return w
}

// mipBackend adapts the two-phase MIP solver (internal/solver) to the
// Backend interface.
type mipBackend struct {
	cfg solver.Config
}

func (b *mipBackend) Name() string { return "mip" }

func (b *mipBackend) Solve(ctx context.Context, in solver.Input, opts Options) (*Result, error) {
	cfg := b.cfg
	if opts.TimeLimit > 0 {
		// Split the joint budget like production's one-hour SLO: most of it
		// on the region-wide phase, the rest on rack refinement.
		cfg.Phase1TimeLimit = opts.TimeLimit * 2 / 3
		cfg.Phase2TimeLimit = opts.TimeLimit / 3
	}
	cfg.Workers = opts.workers()
	var warm *solver.WarmState
	if opts.Warm != nil {
		warm = opts.Warm.MIP
	}
	start := clock.Now()
	res, err := solver.SolveWarm(ctx, in, cfg, warm)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Backend:   b.Name(),
		Targets:   res.Targets,
		Moves:     res.Moves,
		Objective: res.Phase1.Objective,
		Bound:     res.Phase1.Bound,
		Gap:       res.Phase1.Objective - res.Phase1.Bound,
		Elapsed:   clock.Since(start),
		MIP:       res,
		Warm:      nextWarm(opts.Warm, func(w *WarmState) { w.MIP = res.Warm }),
	}
	switch {
	case res.Cancelled || res.Phase1.Status == mip.Cancelled:
		out.Status = StatusCancelled
	case res.Phase1.Status == mip.Optimal:
		out.Status = StatusOptimal
	case res.Phase1.Status == mip.Feasible:
		out.Status = StatusFeasible
	default:
		out.Status = StatusNoSolution
		out.Bound = math.Inf(-1)
		out.Gap = math.Inf(1)
	}
	return out, nil
}

// localSearchBackend adapts the hill-climbing solver (internal/localsearch)
// to the Backend interface.
type localSearchBackend struct {
	cfg localsearch.Config
}

func (b *localSearchBackend) Name() string { return "localsearch" }

func (b *localSearchBackend) Solve(ctx context.Context, in solver.Input, opts Options) (*Result, error) {
	cfg := b.cfg
	if opts.TimeLimit > 0 {
		cfg.TimeLimit = opts.TimeLimit
	}
	cfg.Starts = opts.workers()
	var warm *localsearch.WarmState
	if opts.Warm != nil {
		warm = opts.Warm.LocalSearch
	}
	res, err := localsearch.SolveWarm(ctx, in, cfg, warm)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Backend:     b.Name(),
		Status:      StatusFeasible, // hill climbing proves no bound
		Targets:     res.Targets,
		Moves:       res.Moves,
		Objective:   res.Objective,
		Bound:       math.Inf(-1),
		Gap:         math.Inf(1),
		Elapsed:     res.Elapsed,
		LocalSearch: res,
		Warm: nextWarm(opts.Warm, func(w *WarmState) {
			w.LocalSearch = &localsearch.WarmState{Targets: res.Targets}
		}),
	}
	if res.Cancelled {
		out.Status = StatusCancelled
	}
	return out, nil
}
