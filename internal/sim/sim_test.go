package sim

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.RunUntil(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("clock at %d, want 100", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(10, func(Time) { order = append(order, i) })
	}
	e.RunUntil(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(50, func(Time) { ran = true })
	e.RunUntil(49)
	if ran {
		t.Fatal("event at 50 ran during RunUntil(49)")
	}
	e.RunUntil(50)
	if !ran {
		t.Fatal("event at 50 did not run during RunUntil(50)")
	}
}

func TestEventsScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func(Time)
	chain = func(now Time) {
		count++
		if count < 5 {
			e.At(now+10, chain)
		}
	}
	e.At(0, chain)
	e.RunUntil(1000)
	if count != 5 {
		t.Fatalf("chain ran %d times, want 5", count)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d", e.Processed())
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Every(Hour, func(now Time) { times = append(times, now) })
	e.RunUntil(4 * Hour)
	if len(times) != 4 {
		t.Fatalf("ticked %d times, want 4", len(times))
	}
	for i, at := range times {
		if at != Time(i+1)*Hour {
			t.Fatalf("tick %d at %d", i, at)
		}
	}
}

func TestEveryPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Every(0, func(Time) {})
}

func TestPastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Time) {})
	e.RunUntil(20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past scheduling")
		}
	}()
	e.At(5, func(Time) {})
}

func TestStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue")
	}
	e.At(5, func(Time) {})
	e.At(10, func(Time) {})
	if !e.Step() || e.Now() != 5 {
		t.Fatalf("Step: now=%d", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	e.At(100, func(now Time) {
		e.After(50, func(now Time) {
			if now != 150 {
				t.Errorf("After fired at %d, want 150", now)
			}
		})
	})
	e.RunUntil(200)
}

// Property: N events at random times always run in nondecreasing time order.
func TestQuickOrdering(t *testing.T) {
	check := func(times []uint16) bool {
		e := NewEngine()
		var ran []Time
		for _, tt := range times {
			e.At(Time(tt), func(now Time) { ran = append(ran, now) })
		}
		e.RunUntil(1 << 17)
		if len(ran) != len(times) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
