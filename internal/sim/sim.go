// Package sim provides a small discrete-event simulation engine with a
// virtual clock. The RAS control loops — hourly async solves, minute-level
// mover reactions, health-check ticks, maintenance waves, diurnal capacity
// requests — are scheduled as events against virtual time, which lets a
// month of region operation run in seconds of wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds since the simulation epoch (a Monday
// 00:00, so workload.DiurnalRate lines up with weekdays).
type Time = int64

// Common durations in seconds.
const (
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
)

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func(now Time)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	ran    int
}

// NewEngine creates an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have run.
func (e *Engine) Processed() int { return e.ran }

// Pending reports how many events are scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func(now Time)) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (e *Engine) After(d Time, fn func(now Time)) { e.At(e.now+d, fn) }

// Every schedules fn at now+d, then every d seconds until the engine stops
// being run. fn runs before the next occurrence is scheduled.
func (e *Engine) Every(d Time, fn func(now Time)) {
	if d <= 0 {
		panic("sim: non-positive period")
	}
	var tick func(now Time)
	tick = func(now Time) {
		fn(now)
		e.At(now+d, tick)
	}
	e.At(e.now+d, tick)
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event is after t; the clock then rests at t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		e.ran++
		ev.fn(e.now)
	}
	if t > e.now {
		e.now = t
	}
}

// Step executes exactly the next event (if any) and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.ran++
	ev.fn(e.now)
	return true
}
