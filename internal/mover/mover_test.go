package mover

import (
	"testing"

	"ras/internal/allocator"
	"ras/internal/broker"
	"ras/internal/reservation"
	"ras/internal/topology"
)

func setup(t testing.TB) (*broker.Broker, *reservation.Store, *allocator.Allocator, *Mover) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		DCs: 1, MSBsPerDC: 2, RacksPerMSB: 2, ServersPerRack: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(region)
	store := reservation.NewStore()
	al := allocator.New(b, 8)
	return b, store, al, New(b, store, al)
}

func TestApplyTargetsMovesServers(t *testing.T) {
	b, _, _, m := setup(t)
	b.SetTarget(0, 5)
	b.SetTarget(1, 5)
	if moved := m.ApplyTargets(0); moved != 2 {
		t.Fatalf("moved %d, want 2", moved)
	}
	if b.State(0).Current != 5 || b.State(1).Current != 5 {
		t.Fatal("current binding not updated")
	}
	if m.ApplyTargets(0) != 0 {
		t.Fatal("idempotent re-apply moved servers")
	}
}

func TestApplyTargetsCountsInUseMoves(t *testing.T) {
	b, _, al, m := setup(t)
	b.SetCurrent(0, 1)
	if _, err := al.Place(1, "job", 2); err != nil {
		t.Fatal(err)
	}
	b.SetCurrent(1, 1) // give the container somewhere to land after eviction
	b.SetTarget(0, 2)
	b.SetTarget(1, 1)
	m.ApplyTargets(0)
	st := m.Stats()
	if st.MovesInUse != 1 {
		t.Fatalf("in-use moves = %d, want 1", st.MovesInUse)
	}
	// The preempted container must have been rescheduled inside res 1.
	if got := len(al.ContainersIn(1)); got != 1 {
		t.Fatalf("container lost during move: %d in reservation", got)
	}
}

func TestProfileSwitchCounting(t *testing.T) {
	b, store, _, m := setup(t)
	idA, _ := store.Create(reservation.Reservation{Name: "a", HostProfile: "kernelA", Policy: reservation.DefaultPolicy()})
	idB, _ := store.Create(reservation.Reservation{Name: "b", HostProfile: "kernelB", Policy: reservation.DefaultPolicy()})
	b.SetCurrent(0, idA)
	b.SetTarget(0, idB)
	m.ApplyTargets(0)
	if m.Stats().ProfileSwitches != 1 {
		t.Fatalf("profile switches = %d, want 1", m.Stats().ProfileSwitches)
	}
}

func TestRandomFailureReplacedFromBuffer(t *testing.T) {
	b, store, _, m := setup(t)
	id, _ := store.Create(reservation.Reservation{Name: "svc", Policy: reservation.DefaultPolicy()})
	// Same hardware type for server 0 and a buffer server.
	victim := topology.ServerID(0)
	victimType := b.Region().Servers[victim].Type
	var buf topology.ServerID = -1
	for i := 1; i < len(b.Region().Servers); i++ {
		if b.Region().Servers[i].Type == victimType {
			buf = topology.ServerID(i)
			break
		}
	}
	if buf < 0 {
		t.Skip("no same-type server in tiny region")
	}
	b.SetCurrent(victim, id)
	b.SetCurrent(buf, reservation.SharedBuffer)

	ev := broker.Event{Server: victim, Kind: broker.RandomFailure, Time: 10}
	b.SetUnavailable(victim, broker.RandomFailure, 10, 1000)
	m.HandleFailure(ev, 10)

	if b.State(buf).Current != id {
		t.Fatalf("buffer server not moved into reservation: %+v", b.State(buf))
	}
	if m.Stats().Replacements != 1 {
		t.Fatalf("replacements = %d", m.Stats().Replacements)
	}
}

func TestReplacementMissRecorded(t *testing.T) {
	b, store, _, m := setup(t)
	id, _ := store.Create(reservation.Reservation{Name: "svc", Policy: reservation.DefaultPolicy()})
	b.SetCurrent(0, id)
	// No buffer servers at all.
	m.HandleFailure(broker.Event{Server: 0, Kind: broker.RandomFailure, Time: 1}, 1)
	if m.Stats().ReplacementMiss != 1 {
		t.Fatalf("miss = %d, want 1", m.Stats().ReplacementMiss)
	}
}

func TestCorrelatedFailureNoMoverAction(t *testing.T) {
	b, store, _, m := setup(t)
	id, _ := store.Create(reservation.Reservation{Name: "svc", Policy: reservation.DefaultPolicy()})
	b.SetCurrent(0, id)
	b.SetCurrent(1, reservation.SharedBuffer)
	m.HandleFailure(broker.Event{Server: 0, Kind: broker.CorrelatedFailure, Time: 1}, 1)
	if m.Stats().Replacements != 0 {
		t.Fatal("correlated failures must not consume the shared buffer (§3.3.1)")
	}
	if b.State(1).Current != reservation.SharedBuffer {
		t.Fatal("buffer server moved on a correlated failure")
	}
}

func TestFreePoolFailureIgnored(t *testing.T) {
	b, _, _, m := setup(t)
	b.SetCurrent(1, reservation.SharedBuffer)
	m.HandleFailure(broker.Event{Server: 0, Kind: broker.RandomFailure, Time: 1}, 1)
	if m.Stats().Replacements != 0 {
		t.Fatal("free-pool server failure must not trigger replacement")
	}
}

func TestLoanAndRevoke(t *testing.T) {
	b, _, _, m := setup(t)
	b.SetCurrent(0, reservation.SharedBuffer)
	b.SetCurrent(1, reservation.SharedBuffer)
	n := m.LoanIdleBuffers([]reservation.ID{20, 21})
	if n != 2 {
		t.Fatalf("loans = %d, want 2", n)
	}
	if b.State(0).LoanedTo == reservation.Unassigned {
		t.Fatal("loan not recorded")
	}
	// Round-robin across elastic reservations.
	if b.State(0).LoanedTo == b.State(1).LoanedTo {
		t.Fatal("loans not distributed round-robin")
	}
	if got := m.RevokeAllLoans(); got != 2 {
		t.Fatalf("revoked %d, want 2", got)
	}
	if b.State(0).LoanedTo != reservation.Unassigned {
		t.Fatal("loan not revoked")
	}
}

func TestLoanNothingWithoutElastic(t *testing.T) {
	b, _, _, m := setup(t)
	b.SetCurrent(0, reservation.SharedBuffer)
	if m.LoanIdleBuffers(nil) != 0 {
		t.Fatal("loaned without elastic reservations")
	}
}

func TestReplacementPrefersSameTypeAndRevokesLoans(t *testing.T) {
	b, store, _, m := setup(t)
	id, _ := store.Create(reservation.Reservation{Name: "svc", Policy: reservation.DefaultPolicy()})
	victim := topology.ServerID(0)
	victimType := b.Region().Servers[victim].Type
	var same topology.ServerID = -1
	for i := 1; i < len(b.Region().Servers); i++ {
		if b.Region().Servers[i].Type == victimType {
			same = topology.ServerID(i)
			break
		}
	}
	if same < 0 {
		t.Skip("no same-type server")
	}
	b.SetCurrent(victim, id)
	b.SetCurrent(same, reservation.SharedBuffer)
	b.SetLoan(same, 30) // loaned out; must be revoked for failure handling
	b.SetUnavailable(victim, broker.RandomFailure, 5, 50)
	m.HandleFailure(broker.Event{Server: victim, Kind: broker.RandomFailure, Time: 5}, 5)
	if b.State(same).Current != id {
		t.Fatal("loaned buffer server not reclaimed for replacement")
	}
	if m.Stats().Revocations != 1 {
		t.Fatalf("revocations = %d, want 1", m.Stats().Revocations)
	}
}

func TestResetStats(t *testing.T) {
	b, _, _, m := setup(t)
	b.SetTarget(0, 3)
	m.ApplyTargets(0)
	m.ResetStats()
	st := m.Stats()
	if st.MovesInUse != 0 || st.MovesUnused != 0 || st.Replacements != 0 || st.FailedReplace != nil {
		t.Fatalf("ResetStats did not clear: %+v", st)
	}
}
