// Package mover implements the Online Mover, the RAS component that
// executes the async solver's decisions and handles the fast paths the
// solver is too slow for (paper §3.2–3.4, Figure 6 step 4):
//
//   - applying target bindings: preempting containers off a server, host
//     cleanup and OS re-configuration (host-profile switches), then flipping
//     ownership;
//   - replacing randomly-failed servers from the shared buffer within one
//     minute, well before the next hourly solve;
//   - loaning idle buffer capacity to elastic reservations and revoking it
//     when failures reclaim it.
//
// Correlated MSB failures deliberately require no mover action: the
// embedded buffers are already inside each reservation.
package mover

import (
	"sort"

	"ras/internal/allocator"
	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// Stats counts mover activity.
type Stats struct {
	MovesInUse      int // moves that preempted running containers
	MovesUnused     int // moves of idle servers
	ProfileSwitches int // host-profile reconfigurations
	Replacements    int // random-failure replacements from the shared buffer
	ReplacementMiss int // failures with no eligible buffer server
	Loans           int // servers loaned to elastic reservations
	Revocations     int // loans revoked for failure handling
	FailedReplace   []topology.ServerID
}

// Mover executes binding changes against the broker.
type Mover struct {
	broker *broker.Broker
	region *topology.Region
	store  *reservation.Store
	alloc  *allocator.Allocator // optional; nil disables container handling
	stats  Stats
}

// New creates a mover. alloc may be nil when no container allocator is in
// the loop (pure capacity simulations).
func New(b *broker.Broker, store *reservation.Store, alloc *allocator.Allocator) *Mover {
	return &Mover{broker: b, region: b.Region(), store: store, alloc: alloc}
}

// Stats returns a copy of the accumulated counters.
func (m *Mover) Stats() Stats { return m.stats }

// ResetStats clears the counters (per-measurement-window accounting).
func (m *Mover) ResetStats() { m.stats = Stats{} }

// profileOf looks up a reservation's host profile ("" for the free pool and
// the shared buffer).
func (m *Mover) profileOf(id reservation.ID) string {
	if id < 0 || m.store == nil {
		return ""
	}
	r, err := m.store.Get(id)
	if err != nil {
		return ""
	}
	return r.HostProfile
}

// ApplyTargets walks the broker and moves every server whose target binding
// differs from its current one: preempt → clean up → reconfigure → rebind
// (§3.2). It returns the number of servers moved.
func (m *Mover) ApplyTargets(now int64) int {
	snap := m.broker.Snapshot()
	moved := 0
	for i := range snap {
		st := &snap[i]
		if st.Target == st.Current {
			continue
		}
		m.moveServer(st, st.Target)
		moved++
	}
	return moved
}

// moveServer executes one ownership change.
func (m *Mover) moveServer(st *broker.ServerState, to reservation.ID) {
	inUse := st.Containers > 0 && st.LoanedTo == reservation.Unassigned
	if m.alloc != nil && st.Containers > 0 {
		// Preempt: reschedule the containers inside their own reservation.
		m.alloc.Reschedule(st.ID)
	}
	if m.profileOf(st.Current) != m.profileOf(to) {
		m.stats.ProfileSwitches++
	}
	if st.Current != reservation.Unassigned {
		if inUse {
			m.stats.MovesInUse++
		} else {
			m.stats.MovesUnused++
		}
	}
	m.broker.SetCurrent(st.ID, to)
}

// HandleFailure reacts to one unavailability event. Random and ToR failures
// of servers inside guaranteed reservations are replaced from the shared
// buffer within the minute; correlated failures need no action (embedded
// buffers); recoveries return the server to service.
func (m *Mover) HandleFailure(ev broker.Event, now int64) {
	switch ev.Kind {
	case broker.RandomFailure, broker.ToRFailure:
		st := m.broker.State(ev.Server)
		if m.alloc != nil && st.Containers > 0 {
			m.alloc.Reschedule(ev.Server) // containers flee the dead server
		}
		if st.Current < 0 {
			return // free pool or buffer server failed: nothing to replace
		}
		m.replaceFromBuffer(ev.Server, st.Current)
	case broker.CorrelatedFailure:
		// Embedded buffers absorb this; the allocator simply reschedules.
		if m.alloc != nil {
			m.alloc.Reschedule(ev.Server)
		}
	case broker.Available:
		// Recovered server stays where it is; the next solve rebalances.
	}
}

// replaceFromBuffer moves one eligible shared-buffer server into the failed
// server's reservation. Loaned-out buffer servers are revoked if necessary.
func (m *Mover) replaceFromBuffer(failed topology.ServerID, into reservation.ID) {
	var rsv reservation.Reservation
	if m.store != nil {
		if r, err := m.store.Get(into); err == nil {
			rsv = r
		}
	}
	failedType := m.region.Servers[failed].Type

	snap := m.broker.Snapshot()
	type cand struct {
		id     topology.ServerID
		loaned bool
		same   bool // same hardware type as the failed server
	}
	var cands []cand
	for i := range snap {
		st := &snap[i]
		if st.Current != reservation.SharedBuffer || st.Unavail != broker.Available {
			continue
		}
		t := m.region.Servers[st.ID].Type
		if rsv.Name != "" {
			v := hardware.RRU(m.region.Catalog.Type(t), rsv.Class)
			if !rsv.Eligible(t, v) {
				continue
			}
		}
		cands = append(cands, cand{
			id:     st.ID,
			loaned: st.LoanedTo != reservation.Unassigned,
			same:   t == failedType,
		})
	}
	if len(cands) == 0 {
		m.stats.ReplacementMiss++
		m.stats.FailedReplace = append(m.stats.FailedReplace, failed)
		return
	}
	// Prefer identical hardware, then un-loaned servers.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].same != cands[j].same {
			return cands[i].same
		}
		if cands[i].loaned != cands[j].loaned {
			return !cands[i].loaned
		}
		return cands[i].id < cands[j].id
	})
	c := cands[0]
	if c.loaned {
		m.revoke(c.id)
	}
	m.broker.SetCurrent(c.id, into)
	m.stats.Replacements++
}

// LoanIdleBuffers hands idle shared-buffer servers to elastic reservations
// round-robin (§3.4) and returns the number of new loans.
func (m *Mover) LoanIdleBuffers(elastic []reservation.ID) int {
	if len(elastic) == 0 {
		return 0
	}
	snap := m.broker.Snapshot()
	loans := 0
	next := 0
	for i := range snap {
		st := &snap[i]
		if st.Current != reservation.SharedBuffer ||
			st.LoanedTo != reservation.Unassigned ||
			st.Unavail != broker.Available ||
			st.Containers > 0 {
			continue
		}
		m.broker.SetLoan(st.ID, elastic[next%len(elastic)])
		next++
		loans++
		m.stats.Loans++
	}
	return loans
}

// revoke reclaims one loaned buffer server, evicting elastic containers.
func (m *Mover) revoke(id topology.ServerID) {
	if m.alloc != nil {
		m.alloc.Evict(id) // elastic workloads are preemptible by contract
	}
	m.broker.SetLoan(id, reservation.Unassigned)
	m.stats.Revocations++
}

// RevokeAllLoansFor reclaims the loan on one specific server (the
// emergency-grant path needs a targeted revoke).
func (m *Mover) RevokeAllLoansFor(id topology.ServerID) {
	if m.broker.State(id).LoanedTo != reservation.Unassigned {
		m.revoke(id)
	}
}

// RevokeAllLoans reclaims every elastic loan (e.g. at the start of a
// large-scale failure response) and returns the number revoked.
func (m *Mover) RevokeAllLoans() int {
	snap := m.broker.Snapshot()
	n := 0
	for i := range snap {
		if snap[i].LoanedTo != reservation.Unassigned {
			m.revoke(snap[i].ID)
			n++
		}
	}
	return n
}
