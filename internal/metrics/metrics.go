// Package metrics provides the small statistics toolkit used by the
// benchmark harness: percentile estimation, mean/variance, normalized
// variance, histograms, and time-series accumulation for the figures in the
// paper's evaluation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Sample is an accumulating collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Variance reports the population variance (0 for fewer than 2 points).
func (s *Sample) Variance() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	t := 0.0
	for _, x := range s.xs {
		d := x - m
		t += d * d
	}
	return t / float64(len(s.xs))
}

// StdDev reports the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. Empty samples yield 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Min reports the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max reports the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	out := append([]float64(nil), s.xs...)
	sort.Float64s(out)
	return out
}

// NormalizedVariance reports the variance of xs after dividing every value
// by the mean — the scale-free imbalance measure of Figure 14. A uniform
// vector yields 0.
func NormalizedVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	v := 0.0
	for _, x := range xs {
		d := x/mean - 1
		v += d * d
	}
	return v / float64(len(xs))
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	n      int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram spec [%v,%v) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// N reports the total number of observations, including out-of-range ones.
func (h *Histogram) N() int { return h.n }

// Density reports the probability density of bin i (so that the integral
// over all bins is ≤ 1, matching Figure 7's y-axis).
func (h *Histogram) Density(i int) float64 {
	if h.n == 0 {
		return 0
	}
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / float64(h.n) / binWidth
}

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + binWidth*(float64(i)+0.5)
}

// Series is a labelled time series for figure output.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Add appends one (x, y) point.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Table formats labelled rows as an aligned text table for the benchmark
// harness output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Counter is a monotonically increasing atomic counter, safe for concurrent
// use from solver goroutines. The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter (tests, epoch rollovers).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomically set/read level value — a most-recent measurement
// rather than an accumulating count. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set records the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value reports the most recently set level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge (tests, epoch rollovers).
func (g *Gauge) Reset() { g.v.Store(0) }

// Solver aggregates process-wide counters from the branch-and-bound engine
// (internal/mip): how many solves ran, at what parallelism, how much tree
// they explored, and where incumbents came from. WorkersUsed accumulates
// the resolved worker count of every solve, so WorkersUsed/Solves is the
// average parallelism actually used.
var Solver struct {
	Solves           Counter
	WorkersUsed      Counter
	NodesExplored    Counter
	IncumbentUpdates Counter
	HeuristicWins    Counter
	// RoundWarmHits/RoundWarmMisses count cross-round warm-start seeding at
	// the solver layer: a hit when a persisted basis from round k matched
	// the round k+1 model shape and was passed to the root LP, a miss when
	// a basis was offered but the shape had drifted and the round fell back
	// to a cold start.
	RoundWarmHits   Counter
	RoundWarmMisses Counter
	// Incremental model build (solver model cache + broker deltas).
	// ModelPatchHits counts rounds whose cached phase model was patched in
	// place from a delta instead of rebuilt; ModelPatchMisses counts rounds
	// that offered a delta but had no compatible cache to patch (first
	// round, version gap, config change); FallbackRebuilds counts rounds
	// where a cache and delta were present but the delta broke the model's
	// structure (reservations created/deleted, symmetry groups appearing or
	// emptying) and the round fell back to a cold rebuild.
	ModelPatchHits   Counter
	ModelPatchMisses Counter
	FallbackRebuilds Counter
	// POP partitioned solving (the "pop" backend). Partitions gauges the
	// most recent solve's effective partition count k; PartitionSolves
	// accumulates sub-MIP solves (k per pop round); RepairMoves accumulates
	// the recombination pass's applied moves. PartitionWarmHits/Misses
	// count per-partition cross-round warm-state reuse at the pop layer: a
	// hit when the previous round's partition plan signature matched and
	// that partition's warm state was handed to its sub-solve, a miss when
	// the plan was re-drawn (or the round was cold) and the sub-solve
	// started fresh. The deeper basis-shape matching inside each sub-solve
	// still counts into RoundWarmHits/RoundWarmMisses.
	Partitions          Gauge
	PartitionSolves     Counter
	RepairMoves         Counter
	PartitionWarmHits   Counter
	PartitionWarmMisses Counter
}

// LP aggregates process-wide counters from the simplex kernel (internal/lp):
// solve and iteration volume, how often warm starts were attempted and how
// they fared, and how much structural work was amortized away. WarmHits
// counts solves completed by a warm path (workspace basis reuse or basis
// import); WarmMisses counts warm attempts that fell back to a cold start.
// Refactorizations counts sparse basis refactorizations (Markowitz LU
// rebuilds of the eta-file factorization), and WorkspaceReuses counts solves
// that re-entered an already-built workspace structure instead of rebuilding
// sparse columns and the slack/artificial layout.
//
// The factorization kernel adds its own gauges and counters: UpdateEtas
// counts product-form eta matrices appended by pivots between
// refactorizations, FactorFillIns accumulates the fill-in nonzeros the
// Markowitz elimination created, SingularRepairs counts basis repairs where
// a linearly dependent basis column was swapped for its row's artificial,
// and FactorNnz/FactorRows gauge the most recent factorization's stored
// nonzeros and dimension — together they show how far the basis stays from
// the transportation-like sparsity the kernel is built for.
var LP struct {
	Solves           Counter
	Iterations       Counter
	DualIterations   Counter
	Refactorizations Counter
	WorkspaceReuses  Counter
	WarmHits         Counter
	WarmMisses       Counter
	UpdateEtas       Counter
	FactorFillIns    Counter
	SingularRepairs  Counter
	FactorNnz        Gauge
	FactorRows       Gauge
}
