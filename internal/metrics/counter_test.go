package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Value()=%d, want 8000", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value()=%d after Reset, want 0", got)
	}
}

func TestSolverCountersWired(t *testing.T) {
	// The package-level solver counters exist and accumulate; the mip
	// package bumps them on every Solve.
	Solver.Solves.Reset()
	Solver.WorkersUsed.Reset()
	Solver.Solves.Add(2)
	Solver.WorkersUsed.Add(8)
	if Solver.Solves.Value() != 2 || Solver.WorkersUsed.Value() != 8 {
		t.Fatalf("solver counters: solves=%d workers=%d", Solver.Solves.Value(), Solver.WorkersUsed.Value())
	}
	Solver.Solves.Reset()
	Solver.WorkersUsed.Reset()
}
