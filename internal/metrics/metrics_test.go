package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample must yield zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Len() != 8 || s.Mean() != 5 {
		t.Fatalf("len=%d mean=%v", s.Len(), s.Mean())
	}
	if s.Variance() != 4 || s.StdDev() != 2 {
		t.Fatalf("var=%v sd=%v", s.Variance(), s.StdDev())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 100 {
		t.Fatal("extremes")
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 0.01 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(95); math.Abs(p-95.05) > 0.1 {
		t.Fatalf("p95 = %v", p)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatal("min/max")
	}
}

func TestPercentileUnsortedInsertion(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5, 3, 7} {
		s.Add(x)
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 9 {
		t.Fatal("sorting broken")
	}
	s.Add(0) // must re-sort after Add
	if s.Percentile(0) != 0 {
		t.Fatal("stale sort after Add")
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	check := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSortedCopy(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	v := s.Values()
	if !sort.Float64sAreSorted(v) {
		t.Fatal("Values not sorted")
	}
	v[0] = 99
	if s.Percentile(0) == 99 {
		t.Fatal("Values aliases internal storage")
	}
}

func TestNormalizedVariance(t *testing.T) {
	if NormalizedVariance([]float64{5, 5, 5}) != 0 {
		t.Fatal("uniform vector must have zero normalized variance")
	}
	if NormalizedVariance([]float64{1}) != 0 || NormalizedVariance(nil) != 0 {
		t.Fatal("degenerate inputs")
	}
	lo := NormalizedVariance([]float64{9, 10, 11})
	hi := NormalizedVariance([]float64{1, 10, 19})
	if lo >= hi {
		t.Fatalf("imbalance ordering: %v !< %v", lo, hi)
	}
	// Scale-free: multiplying all values by a constant changes nothing.
	a := NormalizedVariance([]float64{1, 2, 3})
	b := NormalizedVariance([]float64{100, 200, 300})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("not scale-free: %v vs %v", a, b)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 3, 5, 9, 10, 42} {
		h.Add(x)
	}
	if h.N() != 8 {
		t.Fatalf("N=%d", h.N())
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Fatalf("bin0=%d", h.Counts[0])
	}
	if h.under != 1 || h.over != 2 {
		t.Fatalf("under=%d over=%d", h.under, h.over)
	}
	if h.BinCenter(0) != 1 {
		t.Fatalf("center=%v", h.BinCenter(0))
	}
	if h.Density(0) <= 0 {
		t.Fatal("density")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad spec must panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if len(s.Xs) != 2 || s.Ys[1] != 20 {
		t.Fatalf("series: %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22222") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines", len(lines))
	}
}
