package workload

import (
	"testing"
	"testing/quick"

	"ras/internal/hardware"
)

func TestRequestSizesSpanPaperRange(t *testing.T) {
	g := NewRequestGen(hardware.DefaultCatalog(), 30000, 1)
	small, large := false, false
	for i := 0; i < 2000; i++ {
		r := g.Next()
		if r.RRUs < 1 {
			t.Fatalf("request size %v < 1", r.RRUs)
		}
		if r.RRUs > 30000 {
			t.Fatalf("request size %v above cap", r.RRUs)
		}
		if r.RRUs <= 10 {
			small = true
		}
		if r.RRUs >= 10000 {
			large = true
		}
	}
	if !small || !large {
		t.Fatal("sizes must span 1..30k (Figure 4)")
	}
}

func TestFungibilityBimodal(t *testing.T) {
	g := NewRequestGen(hardware.DefaultCatalog(), 30000, 2)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		r := g.Next()
		counts[len(r.EligibleTypes)]++
	}
	// Figure 4: a strong mode at exactly 1 type and a strong mode around 8.
	mid := counts[7] + counts[8] + counts[9]
	if counts[1] < 300 {
		t.Fatalf("single-type requests: %d of 3000, want a strong mode", counts[1])
	}
	if mid < 600 {
		t.Fatalf("7-9-type requests: %d of 3000, want the big mode", mid)
	}
}

func TestSingleTypeRequestsAreNewest(t *testing.T) {
	cat := hardware.DefaultCatalog()
	g := NewRequestGen(cat, 30000, 3)
	for i := 0; i < 500; i++ {
		r := g.Next()
		if len(r.EligibleTypes) != 1 {
			continue
		}
		ty := cat.Type(r.EligibleTypes[0])
		if ty.Generation == hardware.GenI {
			t.Fatalf("single-type request got GenI hardware %s", ty.ID)
		}
	}
}

func TestRequestsValid(t *testing.T) {
	g := NewRequestGen(hardware.DefaultCatalog(), 1000, 4)
	for i := 0; i < 500; i++ {
		r := g.Next()
		if err := r.Validate(); err != nil {
			t.Fatalf("generated invalid request: %v", err)
		}
		if r.Name == "" {
			t.Fatal("unnamed request")
		}
	}
}

func TestRequestGenDeterministic(t *testing.T) {
	a := NewRequestGen(hardware.DefaultCatalog(), 1000, 9)
	b := NewRequestGen(hardware.DefaultCatalog(), 1000, 9)
	for i := 0; i < 50; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.RRUs != rb.RRUs || ra.Class != rb.Class || len(ra.EligibleTypes) != len(rb.EligibleTypes) {
			t.Fatal("same seed produced different requests")
		}
	}
}

func TestDiurnalRateShape(t *testing.T) {
	const hour = 3600
	peak := DiurnalRate(11*hour, 100)              // Monday 11:00
	night := DiurnalRate(3*hour, 100)              // Monday 03:00
	weekend := DiurnalRate(5*24*hour+11*hour, 100) // Saturday 11:00
	if peak != 100 {
		t.Fatalf("weekday working hour = %v, want 100", peak)
	}
	if night >= peak/2 {
		t.Fatalf("night rate %v not well below peak", night)
	}
	if weekend >= night+1 && weekend > 15 {
		t.Fatalf("weekend rate %v should be lowest band", weekend)
	}
}

func TestQuickDiurnalBounds(t *testing.T) {
	check := func(tt int64) bool {
		r := DiurnalRate(tt, 50)
		return r >= 0 && r <= 50
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainerGenBounds(t *testing.T) {
	g := NewContainerGen(8, 5)
	for i := 0; i < 1000; i++ {
		u := g.Next()
		if u < 1 || u > 8 {
			t.Fatalf("container size %d outside [1,8]", u)
		}
	}
}

func TestContainerGenMostlySmall(t *testing.T) {
	g := NewContainerGen(8, 6)
	small := 0
	for i := 0; i < 1000; i++ {
		if g.Next() <= 2 {
			small++
		}
	}
	if small < 700 {
		t.Fatalf("only %d/1000 small containers; distribution should be small-heavy", small)
	}
}
