// Package workload generates synthetic capacity requests and container
// workloads matching the paper's characterization:
//
//   - Figure 4: requested sizes span 1 to ~30,000 capacity units
//     (log-uniform, most requests a few hundred to a few thousand), and the
//     number of hardware types that can fulfill a request is bimodal — many
//     requests demand exactly one type (the newest generation), a large mode
//     can be served by ~8 types, and a small tail accepts 10–12 types;
//   - Figure 16: capacity requests arrive with a diurnal, weekday-heavy
//     pattern (spikes during working hours, quiet nights and weekends).
package workload

import (
	"math"
	"math/rand"

	"ras/internal/hardware"
	"ras/internal/reservation"
)

// RequestGen generates synthetic capacity requests.
type RequestGen struct {
	rng *rand.Rand
	cat *hardware.Catalog
	// MaxUnits caps request sizes (paper max ≈ 30,000; simulations scale
	// this down to the synthetic region's size).
	MaxUnits int
	seq      int
}

// NewRequestGen creates a generator. maxUnits ≤ 0 selects the paper's 30,000.
func NewRequestGen(cat *hardware.Catalog, maxUnits int, seed int64) *RequestGen {
	if maxUnits <= 0 {
		maxUnits = 30000
	}
	return &RequestGen{rng: rand.New(rand.NewSource(seed)), cat: cat, MaxUnits: maxUnits}
}

// fungibilityModes reproduces Figure 4's x-axis distribution: the number of
// hardware types that can fulfill a request.
func (g *RequestGen) fungibility() int {
	r := g.rng.Float64()
	switch {
	case r < 0.30: // newest generation only
		return 1
	case r < 0.45:
		return 2 + g.rng.Intn(3) // 2-4 types
	case r < 0.85: // the big mode around 8
		return 7 + g.rng.Intn(3) // 7-9
	default: // fully fungible tail
		return 10 + g.rng.Intn(3) // 10-12
	}
}

// size draws a request size: log-uniform between 1 and MaxUnits, giving the
// heavy mid-range mass of Figure 4.
func (g *RequestGen) size() float64 {
	lo, hi := 0.0, math.Log(float64(g.MaxUnits))
	return math.Ceil(math.Exp(lo + g.rng.Float64()*(hi-lo)))
}

// classFor picks a service class; large requests skew to Web/Feed (the
// paper's ≈30k requests come from Web and Feed).
func (g *RequestGen) classFor(size float64) hardware.Class {
	if size > float64(g.MaxUnits)/3 {
		if g.rng.Intn(2) == 0 {
			return hardware.Web
		}
		return hardware.Feed1
	}
	classes := []hardware.Class{
		hardware.Web, hardware.Feed1, hardware.Feed2,
		hardware.DataStore, hardware.FleetAvg, hardware.BatchML,
	}
	return classes[g.rng.Intn(len(classes))]
}

// Next generates one capacity request as an unregistered Reservation spec
// (ID unset; register via reservation.Store.Create).
func (g *RequestGen) Next() reservation.Reservation {
	g.seq++
	size := g.size()
	class := g.classFor(size)

	eligible := g.cat.EligibleTypes(class)
	want := g.fungibility()
	if want > len(eligible) {
		want = len(eligible)
	}
	// Restrict to the newest `want` types: requests demanding few types
	// demand the latest generation (paper §2.4).
	byGen := append([]int(nil), eligible...)
	sortByGenerationDesc(g.cat, byGen)
	types := append([]int(nil), byGen[:want]...)

	return reservation.Reservation{
		Name:          requestName(g.seq),
		Owner:         "synthetic",
		Class:         class,
		RRUs:          size,
		EligibleTypes: types,
		CountBased:    g.rng.Float64() < 0.3, // smaller services count servers
		Policy:        reservation.DefaultPolicy(),
	}
}

func requestName(seq int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	return "svc-" + string(alpha[seq%26]) + string(alpha[(seq/26)%26]) + itoa(seq)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func sortByGenerationDesc(cat *hardware.Catalog, idx []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := cat.Type(idx[j-1]), cat.Type(idx[j])
			if a.Generation < b.Generation ||
				(a.Generation == b.Generation && a.Cores < b.Cores) {
				idx[j-1], idx[j] = idx[j], idx[j-1]
			} else {
				break
			}
		}
	}
}

// DiurnalRate reports the expected number of capacity requests during the
// hour starting at virtual time t (seconds since a Monday 00:00), scaled so
// that a weekday working hour sees `peak` requests. Nights run at ~15% and
// weekends at ~10% of peak, matching the weekday spikes of Figure 16.
func DiurnalRate(t int64, peak float64) float64 {
	const day = 24 * 3600
	const week = 7 * day
	tw := t % week
	if tw < 0 {
		tw += week
	}
	dayIdx := tw / day
	hour := (tw % day) / 3600
	if dayIdx >= 5 { // weekend
		return 0.10 * peak
	}
	if hour >= 9 && hour < 18 { // working hours
		return peak
	}
	if hour >= 7 && hour < 21 { // shoulder
		return 0.45 * peak
	}
	return 0.15 * peak
}

// ContainerGen draws container sizes for the level-2 allocator: mostly
// small (1-2 units), a tail of large containers.
type ContainerGen struct {
	rng      *rand.Rand
	maxUnits int
}

// NewContainerGen creates a container-size generator; maxUnits is the
// stacking capacity of a server.
func NewContainerGen(maxUnits int, seed int64) *ContainerGen {
	if maxUnits <= 0 {
		maxUnits = 8
	}
	return &ContainerGen{rng: rand.New(rand.NewSource(seed)), maxUnits: maxUnits}
}

// Next draws one container size in [1, maxUnits].
func (g *ContainerGen) Next() int {
	r := g.rng.Float64()
	switch {
	case r < 0.6:
		return 1
	case r < 0.85:
		return 2
	case r < 0.95:
		return g.maxUnits / 2
	default:
		return g.maxUnits
	}
}
