package greedy

import (
	"testing"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

func setup(t testing.TB) (*broker.Broker, *Assigner) {
	t.Helper()
	region, err := topology.Generate(topology.GenSpec{
		DCs: 1, MSBsPerDC: 4, RacksPerMSB: 4, ServersPerRack: 4, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := broker.New(region)
	return b, New(b)
}

func TestFulfillAcquiresCapacity(t *testing.T) {
	b, g := setup(t)
	r := reservation.Reservation{ID: 0, Name: "web", Class: hardware.Web, RRUs: 10, Policy: reservation.DefaultPolicy()}
	acq, missing := g.Fulfill(&r)
	if missing != 0 {
		t.Fatalf("missing %v RRUs", missing)
	}
	if len(acq) == 0 {
		t.Fatal("nothing acquired")
	}
	have := 0.0
	for _, id := range b.ServersIn(0) {
		have += hardware.RRU(b.Region().Catalog.Type(b.Region().Servers[id].Type), hardware.Web)
	}
	if have < 10 {
		t.Fatalf("acquired %v RRUs, want ≥ 10", have)
	}
}

func TestFulfillConcentrates(t *testing.T) {
	// The defining baseline property: greedy fills the first MSBs first.
	b, g := setup(t)
	r := reservation.Reservation{ID: 0, Name: "web", Class: hardware.Web, RRUs: 8, CountBased: true, Policy: reservation.DefaultPolicy()}
	g.Fulfill(&r)
	perMSB := map[int]int{}
	for _, id := range b.ServersIn(0) {
		perMSB[b.Region().Servers[id].MSB]++
	}
	max := 0
	for _, n := range perMSB {
		if n > max {
			max = n
		}
	}
	if float64(max) < 0.5*8 {
		t.Fatalf("greedy spread too evenly (max MSB %d of 8); baseline must concentrate", max)
	}
}

func TestFulfillIdempotentWhenSatisfied(t *testing.T) {
	_, g := setup(t)
	r := reservation.Reservation{ID: 0, Name: "web", Class: hardware.Web, RRUs: 5, CountBased: true, Policy: reservation.DefaultPolicy()}
	g.Fulfill(&r)
	acq, missing := g.Fulfill(&r)
	if len(acq) != 0 || missing != 0 {
		t.Fatalf("second fulfill acquired %d, missing %v", len(acq), missing)
	}
}

func TestFulfillReportsShortage(t *testing.T) {
	_, g := setup(t)
	r := reservation.Reservation{ID: 0, Name: "huge", Class: hardware.Web, RRUs: 1e9, Policy: reservation.DefaultPolicy()}
	_, missing := g.Fulfill(&r)
	if missing <= 0 {
		t.Fatal("impossible request must report missing RRUs")
	}
}

func TestFulfillSkipsUnavailableAndBound(t *testing.T) {
	b, g := setup(t)
	for i := 0; i < len(b.Region().Servers); i += 2 {
		b.SetUnavailable(topology.ServerID(i), broker.RandomFailure, 0, 0)
	}
	r := reservation.Reservation{ID: 0, Name: "web", Class: hardware.Web, RRUs: 4, CountBased: true, Policy: reservation.DefaultPolicy()}
	g.Fulfill(&r)
	for _, id := range b.ServersIn(0) {
		if b.State(id).Unavail != broker.Available {
			t.Fatal("greedy acquired a failed server")
		}
	}
}

func TestReleaseReturnsSurplus(t *testing.T) {
	b, g := setup(t)
	r := reservation.Reservation{ID: 0, Name: "web", Class: hardware.Web, RRUs: 8, CountBased: true, Policy: reservation.DefaultPolicy()}
	g.Fulfill(&r)
	r.RRUs = 3 // shrink
	released := g.Release(&r)
	if len(released) == 0 {
		t.Fatal("nothing released after shrink")
	}
	if got := len(b.ServersIn(0)); got < 3 {
		t.Fatalf("released too much: %d left", got)
	}
}

func TestReleaseKeepsBusyServers(t *testing.T) {
	b, g := setup(t)
	r := reservation.Reservation{ID: 0, Name: "web", Class: hardware.Web, RRUs: 4, CountBased: true, Policy: reservation.DefaultPolicy()}
	g.Fulfill(&r)
	for _, id := range b.ServersIn(0) {
		b.SetContainers(id, 1)
	}
	r.RRUs = 1
	if released := g.Release(&r); len(released) != 0 {
		t.Fatalf("released %d busy servers", len(released))
	}
}

func TestFulfillAll(t *testing.T) {
	_, g := setup(t)
	rsvs := []reservation.Reservation{
		{ID: 1, Name: "b", Class: hardware.Web, RRUs: 4, CountBased: true, Policy: reservation.DefaultPolicy()},
		{ID: 0, Name: "a", Class: hardware.Feed1, RRUs: 4, CountBased: true, Policy: reservation.DefaultPolicy()},
		{ID: 2, Name: "e", Elastic: true, RRUs: 99, Policy: reservation.DefaultPolicy()},
	}
	if missing := g.FulfillAll(rsvs); missing != 0 {
		t.Fatalf("missing %v", missing)
	}
}

func TestEligibilityRespected(t *testing.T) {
	b, g := setup(t)
	// Restrict to a single hardware type.
	cat := b.Region().Catalog
	want := cat.EligibleTypes(hardware.Web)[0]
	r := reservation.Reservation{ID: 0, Name: "narrow", Class: hardware.Web, RRUs: 1,
		CountBased: true, EligibleTypes: []int{want}, Policy: reservation.DefaultPolicy()}
	g.Fulfill(&r)
	for _, id := range b.ServersIn(0) {
		if b.Region().Servers[id].Type != want {
			t.Fatalf("acquired type %d, want %d", b.Region().Servers[id].Type, want)
		}
	}
}
