// Package greedy implements Twine's previous production server-assignment
// strategy (paper §1.1): a shared region-wide free-server pool from which
// servers are acquired greedily, on the critical path, whenever a
// reservation needs capacity. It makes no attempt to spread across fault
// domains, balance power, or minimize cross-datacenter traffic — which is
// exactly why it is the baseline that RAS improves on in Figures 12, 14,
// and 15.
package greedy

import (
	"sort"

	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/reservation"
	"ras/internal/topology"
)

// Assigner acquires servers for reservations greedily from the free pool.
type Assigner struct {
	region *topology.Region
	broker *broker.Broker
}

// New creates a greedy assigner over the broker.
func New(b *broker.Broker) *Assigner {
	return &Assigner{region: b.Region(), broker: b}
}

// rru computes the value of a server for a reservation.
func (a *Assigner) rru(id topology.ServerID, r *reservation.Reservation) float64 {
	t := a.region.Servers[id].Type
	v := hardware.RRU(a.region.Catalog.Type(t), r.Class)
	if !r.Eligible(t, v) {
		return 0
	}
	if r.CountBased {
		return 1
	}
	return v
}

// Fulfill greedily acquires free servers until the reservation's RRU demand
// is met, preferring dense racks (the "fill locally first" behaviour that
// concentrates services in few MSBs). It returns the servers acquired and
// the RRUs still missing (0 when fulfilled). Acquired servers are bound in
// the broker immediately — this is the on-critical-path assignment RAS
// removed.
func (a *Assigner) Fulfill(r *reservation.Reservation) (acquired []topology.ServerID, missing float64) {
	have := 0.0
	for _, id := range a.broker.ServersIn(r.ID) {
		have += a.rru(id, r)
	}
	need := r.RRUs - have
	if need <= 0 {
		return nil, 0
	}

	// Candidate free servers, ordered by (MSB, rack, ID): the greedy
	// allocator walks the pool in deployment order, which concentrates a
	// reservation's footprint into the first MSBs with eligible hardware.
	snapshot := a.broker.Snapshot()
	var free []topology.ServerID
	for i := range snapshot {
		st := &snapshot[i]
		if st.Current != reservation.Unassigned || st.Unavail != broker.Available {
			continue
		}
		if a.rru(st.ID, r) <= 0 {
			continue
		}
		free = append(free, st.ID)
	}
	sort.Slice(free, func(i, j int) bool {
		si, sj := &a.region.Servers[free[i]], &a.region.Servers[free[j]]
		if si.MSB != sj.MSB {
			return si.MSB < sj.MSB
		}
		if si.Rack != sj.Rack {
			return si.Rack < sj.Rack
		}
		return si.ID < sj.ID
	})

	for _, id := range free {
		if need <= 0 {
			break
		}
		a.broker.SetCurrent(id, r.ID)
		a.broker.SetTarget(id, r.ID)
		acquired = append(acquired, id)
		need -= a.rru(id, r)
	}
	if need < 0 {
		need = 0
	}
	return acquired, need
}

// Release returns servers of a reservation to the free pool until its RRU
// surplus is gone (decommission path: "when the last container running on a
// server is decommissioned, the server is returned").
func (a *Assigner) Release(r *reservation.Reservation) (released []topology.ServerID) {
	have := 0.0
	members := a.broker.ServersIn(r.ID)
	for _, id := range members {
		have += a.rru(id, r)
	}
	for _, id := range members {
		if have <= r.RRUs {
			break
		}
		st := a.broker.State(id)
		if st.Containers > 0 {
			continue
		}
		v := a.rru(id, r)
		if have-v < r.RRUs {
			continue
		}
		a.broker.SetCurrent(id, reservation.Unassigned)
		a.broker.SetTarget(id, reservation.Unassigned)
		have -= v
		released = append(released, id)
	}
	return released
}

// FulfillAll runs Fulfill for every reservation in ID order and reports the
// total missing RRUs across reservations.
func (a *Assigner) FulfillAll(rsvs []reservation.Reservation) (missingTotal float64) {
	ordered := append([]reservation.Reservation(nil), rsvs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for i := range ordered {
		if ordered[i].Elastic {
			continue
		}
		_, missing := a.Fulfill(&ordered[i])
		missingTotal += missing
	}
	return missingTotal
}
