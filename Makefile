# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Solver/backend benchmarks (ablations + backend comparison).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
