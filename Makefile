# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: check fmt vet lint build test race smoke bench bench-baseline

check: fmt vet lint build test race smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/raslint): determinism, mapiter,
# ctxflow, floatcmp, errdrop, plus the flow-sensitive lockcheck, leakcheck,
# and calldeterminism rules. Exceptions need //raslint:allow <rule> <reason>;
# -stale fails the gate on allow directives that no longer suppress anything.
lint:
	$(GO) run ./cmd/raslint -stale ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race suite covers the parallel solve paths: the mip/localsearch/backend
# tests exercise Workers > 1 (branch-and-bound pool, racing heuristics,
# multi-start climbs) under the race detector.
race:
	$(GO) test -race ./...

# End-to-end smoke run of the parallel solver on a synthetic region.
smoke:
	$(GO) run ./cmd/rassolve -synthetic -workers 4 -time-limit 10s >/dev/null

# Solver/backend benchmarks (ablations + backend comparison).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Record the solver benchmark baseline (1/2/NumCPU worker sweeps) as JSON.
# The raw Go benchmark lines are preserved under "benchfmt_lines"; extract
# them with jq for benchstat comparisons against a later run.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkBackend' -benchtime 3x -count 1 . \
		| $(GO) run ./cmd/benchjson > BENCH_solver.json
	@echo "wrote BENCH_solver.json"
