# Developer entry points. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: check fmt vet lint build test race smoke bench bench-baseline bench-compare bench-compare-short profile

check: fmt vet lint build test race smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/raslint): determinism, mapiter,
# ctxflow, floatcmp, errdrop, the flow-sensitive lockcheck, leakcheck, and
# calldeterminism rules, the summary-driven globalwrite, aliascheck, and
# sharedwrite rules, and the SSA-based nanguard, deadstore, and boundsproof
# rules. Exceptions need //raslint:allow <rule> <reason>; -stale fails the
# gate on allow directives that no longer suppress anything; -budget turns a
# linter latency regression into exit 3 instead of a silently slower gate.
lint:
	$(GO) run ./cmd/raslint -stale -budget 120s ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race suite covers the parallel solve paths: the mip/localsearch/backend
# tests exercise Workers > 1 (branch-and-bound pool, racing heuristics,
# multi-start climbs) under the race detector.
race:
	$(GO) test -race ./...

# End-to-end smoke runs on a synthetic region: the parallel MIP, the
# partitioned backend (k sub-solves dividing the same worker budget), and a
# multi-round simulation that must exercise both the model-cache patch path
# and — via the -grow-hour structural delta — the fallback rebuild path.
smoke:
	$(GO) run ./cmd/rassolve -synthetic -workers 4 -time-limit 10s >/dev/null
	$(GO) run ./cmd/rassolve -synthetic -backend pop -partitions 4 -workers 4 -time-limit 10s >/dev/null
	$(GO) run ./cmd/rassim -days 1 -dcs 2 -msbs 2 -racks 4 -servers 4 -grow-hour 6 -require-cache -q >/dev/null

# Solver/backend benchmarks (ablations + backend comparison).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Record the solver benchmark baseline (1/2/NumCPU worker sweeps) as JSON.
# The raw Go benchmark lines are preserved under "benchfmt_lines"; extract
# them with jq for benchstat comparisons against a later run.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkBackend|BenchmarkRoundIncremental' -benchtime 3x -count 1 . \
		| $(GO) run ./cmd/benchjson > BENCH_solver.json
	@echo "wrote BENCH_solver.json"

# Diff a fresh benchmark run against the committed baseline and print
# per-metric deltas (informational: absolute numbers are machine-dependent).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkBackend|BenchmarkRoundIncremental' -benchtime 3x -count 1 . \
		| $(GO) run ./cmd/benchjson -compare BENCH_solver.json

# CI variant: a single iteration of the serial MIP bench, still piped through
# the compare path, so the benchmarks and the diff tooling cannot rot.
bench-compare-short:
	$(GO) test -run '^$$' -bench 'BenchmarkBackendMIP' -benchtime 1x -count 1 . \
		| $(GO) run ./cmd/benchjson -compare BENCH_solver.json

# Profile one synthetic serial solve; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/rassolve -synthetic -dcs 2 -msbs 3 -reservations 4 -workers 1 \
		-cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof cpu.pprof"
