package ras_test

// One testing.B benchmark per table/figure of the paper's evaluation. Each
// bench runs the corresponding experiment at small scale (benchmarks run
// many iterations; use cmd/rasbench -scale medium|large for the full
// paper-vs-measured regeneration) and reports domain-specific metrics via
// b.ReportMetric alongside the usual ns/op.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem ./...
//	go run ./cmd/rasbench -all -scale medium

import (
	"testing"

	"ras/internal/experiments"
)

// benchExperiment runs one experiment per iteration and fails the benchmark
// if the paper's qualitative shape stops reproducing.
func benchExperiment(b *testing.B, id string, run func(experiments.Scale) (*experiments.Report, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run(experiments.ScaleSmall)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !rep.ShapeHolds {
			b.Fatalf("%s: paper shape did not reproduce:\n%s", id, rep)
		}
		if i == 0 {
			b.ReportMetric(rep.Elapsed.Seconds(), "exp-s")
		}
	}
}

// BenchmarkFig2Heterogeneity regenerates Figure 2: hardware heterogeneity
// across MSBs (9 categories / 12 subtypes, strong per-MSB variance).
func BenchmarkFig2Heterogeneity(b *testing.B) { benchExperiment(b, "fig2", experiments.Fig2) }

// BenchmarkFig3RelativeValue regenerates Figure 3: relative value across
// processor generations (Web 1.47x/1.82x, DataStore flat).
func BenchmarkFig3RelativeValue(b *testing.B) { benchExperiment(b, "fig3", experiments.Fig3) }

// BenchmarkFig4Requests regenerates Figure 4: capacity-request sizes and
// hardware fungibility distribution.
func BenchmarkFig4Requests(b *testing.B) { benchExperiment(b, "fig4", experiments.Fig4) }

// BenchmarkFig5Unavailability regenerates Figure 5: a month of planned and
// unplanned unavailability with one correlated MSB failure.
func BenchmarkFig5Unavailability(b *testing.B) { benchExperiment(b, "fig5", experiments.Fig5) }

// BenchmarkFig7AllocTime regenerates Figure 7: the allocation-time
// distribution across perturbed production-style solves.
func BenchmarkFig7AllocTime(b *testing.B) { benchExperiment(b, "fig7", experiments.Fig7) }

// BenchmarkFig8Breakdown regenerates Figure 8: the allocation-time
// breakdown (RAS build / solver build / initial state / MIP) per phase.
func BenchmarkFig8Breakdown(b *testing.B) { benchExperiment(b, "fig8", experiments.Fig8) }

// BenchmarkFig9Gap regenerates Figure 9: the phase-1 MIP quality gap in
// preemption units and the softened-constraint fix rate.
func BenchmarkFig9Gap(b *testing.B) { benchExperiment(b, "fig9", experiments.Fig9) }

// BenchmarkFig10Setup regenerates Figure 10: setup time vs assignment
// variables (linear growth).
func BenchmarkFig10Setup(b *testing.B) { benchExperiment(b, "fig10", experiments.Fig10) }

// BenchmarkFig11Memory regenerates Figure 11: solver memory vs assignment
// variables (linear growth).
func BenchmarkFig11Memory(b *testing.B) { benchExperiment(b, "fig11", experiments.Fig11) }

// BenchmarkFig12Buffers regenerates Figure 12: correlated-failure buffer
// reduction as RAS replaces greedy assignment (15.1% → 4.2% in the paper).
func BenchmarkFig12Buffers(b *testing.B) { benchExperiment(b, "fig12", experiments.Fig12) }

// BenchmarkFig13Spread regenerates Figure 13: near-uniform service spread
// across MSBs with hardware/affinity exceptions.
func BenchmarkFig13Spread(b *testing.B) { benchExperiment(b, "fig13", experiments.Fig13) }

// BenchmarkFig14Power regenerates Figure 14: normalized power variance
// across MSBs dropping under RAS.
func BenchmarkFig14Power(b *testing.B) { benchExperiment(b, "fig14", experiments.Fig14) }

// BenchmarkFig15Network regenerates Figure 15: cross-datacenter traffic
// reduction from the network-affinity constraint (expression 7).
func BenchmarkFig15Network(b *testing.B) { benchExperiment(b, "fig15", experiments.Fig15) }

// BenchmarkFig16Churn regenerates Figure 16: weekly in-use vs unused server
// move churn with diurnal spikes.
func BenchmarkFig16Churn(b *testing.B) { benchExperiment(b, "fig16", experiments.Fig16) }

// BenchmarkBufferAccounting regenerates the §3.3 capacity split: guaranteed
// vs shared random buffer vs embedded buffers, against the waterfill bound.
func BenchmarkBufferAccounting(b *testing.B) {
	benchExperiment(b, "buffers", experiments.BufferAccounting)
}
