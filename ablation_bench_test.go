package ras_test

// Ablation benchmarks for the design choices the paper's §3.5.2 and this
// repository's DESIGN.md call out: symmetry exploitation, two-phase
// solving, and the branch-and-bound LP warm-start machinery. Each pair runs
// the same workload with the feature on and off; compare the reported
// assignvars/op, lpiters/op, and ns/op.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ras/internal/backend"
	"ras/internal/broker"
	"ras/internal/hardware"
	"ras/internal/localsearch"
	"ras/internal/reservation"
	"ras/internal/solver"
	"ras/internal/topology"
)

// ablationWorkload builds the fixed region + reservations every ablation
// bench solves.
func ablationWorkload(b *testing.B) (*topology.Region, []reservation.Reservation, []broker.ServerState) {
	b.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "ablation", DCs: 2, MSBsPerDC: 3, RacksPerMSB: 6, ServersPerRack: 6, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.Feed2, hardware.DataStore, hardware.FleetAvg}
	var rsvs []reservation.Reservation
	n := 6
	per := float64(len(region.Servers)) * 0.7 / float64(n)
	for i := 0; i < n; i++ {
		rsvs = append(rsvs, reservation.Reservation{
			ID: reservation.ID(i), Name: "svc", Class: classes[i%len(classes)],
			RRUs: per, CountBased: true, Policy: reservation.DefaultPolicy(),
		})
	}
	return region, rsvs, broker.New(region).Snapshot()
}

func runAblation(b *testing.B, cfg solver.Config) {
	b.Helper()
	region, rsvs, states := ablationWorkload(b)
	cfg.Phase1TimeLimit = 20 * time.Second
	cfg.Phase2TimeLimit = 5 * time.Second
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 100
	}
	cfg.SharedBufferFraction = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(context.Background(), solver.Input{Region: region, Reservations: rsvs, States: states}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Phase1.AssignVars), "assignvars")
			b.ReportMetric(float64(res.Phase1.LPIters), "lpiters")
			b.ReportMetric(res.Phase1.GapPreemptions, "gap-preempt")
			b.ReportMetric(res.Phase1.SoftSlack, "softslack")
		}
	}
}

// BenchmarkAblationSymmetryOn solves with equivalence-class grouping (the
// production configuration, paper §3.5.2).
func BenchmarkAblationSymmetryOn(b *testing.B) {
	runAblation(b, solver.Config{})
}

// BenchmarkAblationSymmetryOff solves the raw per-server formulation the
// symmetry exploitation exists to avoid. Expect assignvars to blow up by
// roughly servers/groups and the solve to slow down accordingly.
func BenchmarkAblationSymmetryOff(b *testing.B) {
	runAblation(b, solver.Config{DisableSymmetry: true})
}

// BenchmarkAblationTwoPhase is the production two-phase configuration:
// region-wide MSB goals first, rack goals for the worst reservations after.
func BenchmarkAblationTwoPhase(b *testing.B) {
	runAblation(b, solver.Config{})
}

// BenchmarkAblationSinglePhaseRack folds rack goals into one region-wide
// phase — the "without phasing, the full problems would be at least 10x
// larger" configuration of §4.1.3.
func BenchmarkAblationSinglePhaseRack(b *testing.B) {
	runAblation(b, solver.Config{RackGoalsInPhase1: true})
}

// BenchmarkAblationWarmStartOn uses LP warm starts between branch-and-bound
// node and heuristic solves (basis export + dual-simplex repair).
func BenchmarkAblationWarmStartOn(b *testing.B) {
	runAblation(b, solver.Config{})
}

// BenchmarkAblationWarmStartOff cold-starts every LP. Expect lpiters to
// grow by an order of magnitude for the same search.
func BenchmarkAblationWarmStartOff(b *testing.B) {
	runAblation(b, solver.Config{DisableWarmStart: true})
}

// largeWorkload builds a region roughly 10× the ablation workload (4 DCs ×
// 6 MSBs × 9 racks × 10 servers = 2160 servers vs 216) with proportionally
// more reservations — the scale the sparse factorization kernel targets:
// basis dimensions here make a dense m×m inverse update the dominant cost,
// while the sparse LU + eta file keeps per-pivot work near the basis's
// actual fill.
func largeWorkload(b *testing.B) (*topology.Region, []reservation.Reservation, []broker.ServerState) {
	b.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "ablation-large", DCs: 4, MSBsPerDC: 6, RacksPerMSB: 9, ServersPerRack: 10, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.Feed2, hardware.DataStore, hardware.FleetAvg}
	var rsvs []reservation.Reservation
	n := 14
	per := float64(len(region.Servers)) * 0.7 / float64(n)
	for i := 0; i < n; i++ {
		rsvs = append(rsvs, reservation.Reservation{
			ID: reservation.ID(i), Name: "svc", Class: classes[i%len(classes)],
			RRUs: per, CountBased: true, Policy: reservation.DefaultPolicy(),
		})
	}
	return region, rsvs, broker.New(region).Snapshot()
}

// benchWorkerCounts are the parallelism levels every backend bench runs at:
// serial, two-way, and the full machine. Duplicates (NumCPU == 1 or 2) are
// skipped so benchstat sees each configuration once.
func benchWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkBackendMIP solves the ablation workload with the MIP backend —
// the backend ReBalancer picks for RAS (§6): better placement quality,
// minutes-scale budget in production. Sub-benchmarks sweep the worker count
// (workers=1 is the exact serial solver). The node budget is sized in
// per-node LP cost: the sparse factorization kernel made nodes cheap enough
// that 180 of them fit in the wall-clock the dense kernel spent on 100,
// landing on the same 118.2 reference objective with a tighter proven gap.
func BenchmarkBackendMIP(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runBackendBench(b, "mip", backend.Config{Solver: solver.Config{
				Phase1TimeLimit: 20 * time.Second, Phase2TimeLimit: 5 * time.Second,
				MaxNodes: 180, SharedBufferFraction: -1,
			}}, w)
		})
	}
}

// BenchmarkBackendMIPLarge solves the 10× region through the same MIP
// backend path — the scenario that motivated replacing the dense basis
// inverse (see DESIGN.md "Sparse factorization"). Workers sweep as above.
func BenchmarkBackendMIPLarge(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runBackendBenchOn(b, largeWorkload, "mip", backend.Config{Solver: solver.Config{
				Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 10 * time.Second,
				MaxNodes: 100, SharedBufferFraction: -1,
			}}, w)
		})
	}
}

// BenchmarkBackendLocalSearch solves the same workload with the local-search
// backend — the one ReBalancer picks for near-realtime users like Shard
// Manager (§6): seconds-scale, slightly worse placement quality. For this
// backend the worker count is the number of independent seeded climbs.
func BenchmarkBackendLocalSearch(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runBackendBench(b, "localsearch", backend.Config{
				LocalSearch: localsearch.Config{TimeLimit: 2 * time.Second, Seed: 9},
			}, w)
		})
	}
}

// BenchmarkBackendPOPLarge is the POP-paper-style k-sweep (k ∈ {1, 2, 4,
// 8}) over the same 10× region and solver budget as BenchmarkBackendMIPLarge
// at Workers=1: the wall-clock ratio against MIPLarge/workers=1 is the
// partitioning speedup and the objective delta the allocation-quality price,
// both derived into BENCH_solver.json's pop_ksweep section by cmd/benchjson.
// Workers is pinned to 1 so the sweep isolates the sub-problem-size effect
// (each sub-MIP is the exact serial solver) and stays bit-for-bit
// deterministic; the partitioner may clamp k to the region's MSB geometry.
func BenchmarkBackendPOPLarge(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("partitions=%d", k), func(b *testing.B) {
			runBackendBenchOptsOn(b, largeWorkload, "pop", backend.Config{Solver: solver.Config{
				Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 10 * time.Second,
				MaxNodes: 100, SharedBufferFraction: -1,
			}}, backend.Options{Workers: 1, Partitions: k})
		})
	}
}

// BenchmarkRoundIncremental measures the continuous-optimization steady
// state: round after round over the 10× region with a small availability
// delta between rounds. mode=patch hands the solver broker deltas so the
// cached phase models are patched in place; mode=cold withholds them, so
// every round rebuilds from scratch. Both modes apply the identical
// deterministic mutation stream, so objective/op must match; the
// buildns/op ratio between the modes is the incremental-build payoff that
// cmd/benchjson derives into BENCH_solver.json's round_incremental section.
func BenchmarkRoundIncremental(b *testing.B) {
	for _, mode := range []string{"patch", "cold"} {
		b.Run("mode="+mode, func(b *testing.B) {
			runRoundIncremental(b, mode == "patch")
		})
	}
}

func runRoundIncremental(b *testing.B, usePatch bool) {
	b.Helper()
	region, err := topology.Generate(topology.GenSpec{
		Name: "ablation-large", DCs: 4, MSBsPerDC: 6, RacksPerMSB: 9, ServersPerRack: 10, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	classes := []hardware.Class{hardware.Web, hardware.Feed1, hardware.Feed2, hardware.DataStore, hardware.FleetAvg}
	var rsvs []reservation.Reservation
	n := 14
	per := float64(len(region.Servers)) * 0.7 / float64(n)
	for i := 0; i < n; i++ {
		rsvs = append(rsvs, reservation.Reservation{
			ID: reservation.ID(i), Name: "svc", Class: classes[i%len(classes)],
			RRUs: per, CountBased: true, Policy: reservation.DefaultPolicy(),
		})
	}
	br := broker.New(region)
	cfg := solver.Config{
		Phase1TimeLimit: 60 * time.Second, Phase2TimeLimit: 10 * time.Second,
		MaxNodes: 100, SharedBufferFraction: -1, Workers: 1,
	}

	// Warmup round: populate the model cache and settle the assignment, so
	// the timed rounds are the steady state the incremental build targets.
	states, v := br.SnapshotAt()
	res, err := solver.SolveWarm(context.Background(),
		solver.Input{Region: region, Reservations: rsvs, States: states, StatesVersion: v}, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	warm := res.Warm
	last := v
	for i, tgt := range res.Targets {
		br.SetCurrent(topology.ServerID(i), tgt)
	}
	// Settle round: the applied moves shuffle servers across symmetry
	// groups, so this round falls back to a cold rebuild (in patch mode) —
	// absorb it here so the timed rounds measure the steady state.
	states, v = br.SnapshotAt()
	in := solver.Input{Region: region, Reservations: rsvs, States: states, StatesVersion: v}
	if usePatch {
		if changed, ok := br.ChangedSince(last); ok {
			in.Delta = &solver.Delta{Since: last, Servers: changed}
		}
	}
	last = v
	if res, err = solver.SolveWarm(context.Background(), in, cfg, warm); err != nil {
		b.Fatal(err)
	}
	warm = res.Warm

	var buildNS, mipNS float64
	patched := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One server fails, another revives: a pure bound-flip delta.
		b.StopTimer()
		down := topology.ServerID((i * 7) % len(region.Servers))
		br.SetUnavailable(down, broker.RandomFailure, int64(i), int64(i)+1000)
		if i > 0 {
			up := topology.ServerID(((i - 1) * 7) % len(region.Servers))
			br.ClearUnavailable(up, int64(i))
		}
		states, v := br.SnapshotAt()
		in := solver.Input{Region: region, Reservations: rsvs, States: states, StatesVersion: v}
		if usePatch {
			if changed, ok := br.ChangedSince(last); ok {
				in.Delta = &solver.Delta{Since: last, Servers: changed}
			}
		}
		last = v
		b.StartTimer()
		res, err := solver.SolveWarm(context.Background(), in, cfg, warm)
		if err != nil {
			b.Fatal(err)
		}
		warm = res.Warm
		for _, p := range []*solver.PhaseStats{&res.Phase1, &res.Phase2} {
			buildNS += float64(p.RASBuild + p.InitialState + p.SolverBuild)
			mipNS += float64(p.MIP)
		}
		if res.Phase1.ModelPatched {
			patched++
		}
		if i == 0 {
			b.ReportMetric(res.Phase1.Objective, "objective")
		}
	}
	if usePatch && patched == 0 {
		b.Fatal("patch mode never hit the patch path")
	}
	b.ReportMetric(buildNS/float64(b.N), "buildns/op")
	b.ReportMetric(mipNS/float64(b.N), "mipns/op")
	b.ReportMetric(float64(patched)/float64(b.N), "patchrounds/op")
}

// runBackendBench solves the ablation workload through the unified Backend
// interface, so both backend benches exercise the exact code path production
// callers use and report the common backend-independent metrics.
func runBackendBench(b *testing.B, name string, cfg backend.Config, workers int) {
	b.Helper()
	runBackendBenchOptsOn(b, ablationWorkload, name, cfg, backend.Options{Workers: workers})
}

// runBackendBenchOn is runBackendBench parameterized over the workload.
func runBackendBenchOn(b *testing.B, workload func(*testing.B) (*topology.Region, []reservation.Reservation, []broker.ServerState), name string, cfg backend.Config, workers int) {
	b.Helper()
	runBackendBenchOptsOn(b, workload, name, cfg, backend.Options{Workers: workers})
}

// runBackendBenchOptsOn is the fully parameterized backend bench: any
// workload, any backend, any per-solve Options (the pop k-sweep needs
// Options.Partitions alongside Workers).
func runBackendBenchOptsOn(b *testing.B, workload func(*testing.B) (*topology.Region, []reservation.Reservation, []broker.ServerState), name string, cfg backend.Config, opts backend.Options) {
	b.Helper()
	region, rsvs, states := workload(b)
	be, err := backend.New(name, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := be.Solve(context.Background(),
			solver.Input{Region: region, Reservations: rsvs, States: states}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status == backend.StatusNoSolution {
			b.Fatalf("backend %s: no solution", name)
		}
		if i == 0 {
			b.ReportMetric(res.Objective, "objective")
			b.ReportMetric(float64(res.Moves.InUse+res.Moves.Unused), "moves")
			if res.POP != nil {
				b.ReportMetric(float64(res.POP.Partitions), "partitions")
				b.ReportMetric(float64(res.POP.Repair.Moves()), "repairmoves")
			}
		}
	}
}
