package ras_test

import (
	"context"
	"strings"
	"testing"

	"ras"
)

func TestEmergencyGrantFromFreePool(t *testing.T) {
	sys := testSystem(t)
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "urgent", Class: ras.Web, RRUs: 5, CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// No solve has run: the grant must come entirely from the free pool,
	// immediately.
	granted, err := sys.EmergencyGrant(id, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(granted) < 5 {
		t.Fatalf("granted %d servers for 5 count-based RRUs", len(granted))
	}
	if got := len(sys.Broker().ServersIn(id)); got < 5 {
		t.Fatalf("broker shows %d servers", got)
	}
}

func TestEmergencyGrantDipsIntoBuffer(t *testing.T) {
	sys := testSystem(t)
	region := sys.Region()
	// Fill the region so the free pool is tiny; buffers exist after solve.
	big, err := sys.CreateReservation(ras.Reservation{
		Name: "big", Class: ras.FleetAvg, RRUs: float64(len(region.Servers)) * 0.93,
		CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	bufBefore := len(sys.Broker().ServersIn(ras.SharedBuffer))
	if bufBefore == 0 {
		t.Skip("no buffer materialized at this size")
	}
	urgent, err := sys.CreateReservation(ras.Reservation{
		Name: "urgent", Class: ras.FleetAvg, RRUs: float64(bufBefore + 2),
		CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	granted, err := sys.EmergencyGrant(urgent, float64(bufBefore+2))
	// The grant may or may not fully succeed depending on free leftovers;
	// either way it must have consumed buffer servers.
	bufAfter := len(sys.Broker().ServersIn(ras.SharedBuffer))
	if bufAfter >= bufBefore {
		t.Fatalf("buffer not tapped: %d → %d (granted %d, err %v)",
			bufBefore, bufAfter, len(granted), err)
	}
	_ = big
}

func TestEmergencyGrantReportsShortfall(t *testing.T) {
	sys := testSystem(t)
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "impossible", Class: ras.Web, RRUs: 1e9, CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	granted, err := sys.EmergencyGrant(id, 1e9)
	if err == nil {
		t.Fatal("impossible grant must report a shortfall")
	}
	if !strings.Contains(err.Error(), "short by") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if len(granted) == 0 {
		t.Fatal("partial grant must still happen during an emergency")
	}
}

func TestEmergencyGrantCorrectedByNextSolve(t *testing.T) {
	sys := testSystem(t)
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "svc", Class: ras.Web, RRUs: 20, CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.EmergencyGrant(id, 20); err != nil {
		t.Fatal(err)
	}
	// The emergency grant ignored spread; the next solve must restore the
	// single-MSB-loss guarantee (§5.4: "future solves will correct any
	// placement guarantees that were broken").
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	_, surviving, err := sys.GuaranteedRRUs(id)
	if err != nil {
		t.Fatal(err)
	}
	if surviving < 20 {
		t.Fatalf("post-solve capacity %0.1f does not survive an MSB loss", surviving)
	}
}

func TestEmergencyGrantUnknownReservation(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.EmergencyGrant(999, 5); err == nil {
		t.Fatal("unknown reservation must error")
	}
}
