package ras_test

import (
	"context"
	"testing"

	"ras"
	"ras/internal/sim"
)

func testSystem(t testing.TB) *ras.System {
	t.Helper()
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "api-test", DCs: 2, MSBsPerDC: 2,
		RacksPerMSB: 4, ServersPerRack: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ras.NewSystem(region, ras.Options{})
}

func TestSystemEndToEnd(t *testing.T) {
	sys := testSystem(t)
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "web", Class: ras.Web, RRUs: 30, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Solve(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MIP == nil || res.MIP.Phase1.AssignVars == 0 {
		t.Fatal("no assignment variables")
	}
	if res.Backend != "mip" || res.Status == ras.SolveNoSolution {
		t.Fatalf("unexpected solve result: backend=%q status=%v", res.Backend, res.Status)
	}
	if sys.LastSolve() != res {
		t.Fatal("LastSolve mismatch")
	}
	total, surviving, err := sys.GuaranteedRRUs(id)
	if err != nil {
		t.Fatal(err)
	}
	if surviving < 30 {
		t.Fatalf("capacity guarantee broken: %.1f total, %.1f surviving vs 30 requested",
			total, surviving)
	}
	cid, err := sys.PlaceContainer(id, "job", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StopContainer(cid); err != nil {
		t.Fatal(err)
	}
}

func TestSystemResizeAndDelete(t *testing.T) {
	sys := testSystem(t)
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "svc", Class: ras.FleetAvg, RRUs: 10, CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.ResizeReservation(id, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), sim.Hour); err != nil {
		t.Fatal(err)
	}
	total, _, _ := sys.GuaranteedRRUs(id)
	if total < 20 {
		t.Fatalf("resize not materialized: %.1f < 20", total)
	}
	if err := sys.DeleteReservation(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), 2*sim.Hour); err != nil {
		t.Fatal(err)
	}
	if n := len(sys.Broker().ServersIn(id)); n != 0 {
		t.Fatalf("%d servers still bound after delete+solve", n)
	}
}

func TestSystemGreedyBaseline(t *testing.T) {
	region, err := ras.NewRegion(ras.RegionSpec{
		Name: "greedy", DCs: 1, MSBsPerDC: 3, RacksPerMSB: 4, ServersPerRack: 6, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := ras.NewSystem(region, ras.Options{Greedy: true})
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "svc", Class: ras.Web, RRUs: 8, CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy materializes capacity immediately, on the critical path.
	if got := len(sys.Broker().ServersIn(id)); got < 8 {
		t.Fatalf("greedy assigned %d servers, want ≥ 8", got)
	}
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		t.Fatalf("greedy Solve: %v", err)
	}
}

func TestSystemElasticLoans(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.CreateReservation(ras.Reservation{
		Name: "web", Class: ras.Web, RRUs: 20, Policy: ras.DefaultPolicy(),
	}); err != nil {
		t.Fatal(err)
	}
	el, err := sys.CreateReservation(ras.Reservation{
		Name: "batch", Class: ras.FleetAvg, Elastic: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if loans := sys.LoanBuffersToElastic(); loans == 0 {
		t.Fatal("no buffer servers loaned to the elastic reservation")
	}
	if _, err := sys.PlaceContainer(el, "batch-job", 1); err != nil {
		t.Fatalf("elastic placement on borrowed server: %v", err)
	}
}

func TestMSBFailureSurvival(t *testing.T) {
	sys := testSystem(t)
	region := sys.Region()
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "svc", Class: ras.Web, RRUs: float64(len(region.Servers)) * 0.3,
		CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solve(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := sys.Reservations().Get(id)
	// Fail every MSB in turn; the embedded buffer must cover each.
	for msb := 0; msb < region.NumMSBs; msb++ {
		sys.Health().FailMSB(msb, sim.Hour, sim.Hour)
		usable := 0
		for _, sid := range sys.Broker().ServersIn(id) {
			if sys.Broker().State(sid).Unavail == 0 {
				usable++
			}
		}
		sys.Health().RecoverMSB(msb, 2*sim.Hour)
		if float64(usable) < r.RRUs {
			t.Fatalf("MSB %d failure leaves %d usable servers vs %.0f requested", msb, usable, r.RRUs)
		}
	}
}

func TestSolveLocalSearchBackend(t *testing.T) {
	sys := testSystem(t)
	id, err := sys.CreateReservation(ras.Reservation{
		Name: "svc", Class: ras.Web, RRUs: 20, CountBased: true, Policy: ras.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SolveWith(context.Background(), 0, "localsearch")
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "localsearch" || res.LocalSearch == nil {
		t.Fatalf("expected local-search detail, got backend=%q", res.Backend)
	}
	if res.LocalSearch.Steps == 0 {
		t.Fatal("local-search backend made no moves")
	}
	_, surviving, err := sys.GuaranteedRRUs(id)
	if err != nil {
		t.Fatal(err)
	}
	if surviving < 20 {
		t.Fatalf("local-search backend broke the capacity guarantee: %.1f surviving", surviving)
	}
}
