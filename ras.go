// Package ras is a from-scratch reproduction of RAS, Facebook's
// region-wide datacenter resource allocator (Newell et al., SOSP 2021).
//
// RAS provides guaranteed capacity through a two-level architecture:
//
//  1. The async solver (internal/solver) continuously optimizes
//     server-to-reservation assignments for a whole region by solving a
//     mixed-integer program — accounting for random and correlated
//     failures, planned maintenance, heterogeneous hardware (via relative
//     resource units), network affinity, and fault-domain spread — off the
//     critical path, and the online mover (internal/mover) executes its
//     decisions and handles sub-minute failure replacement.
//  2. A container allocator (internal/allocator) places containers on
//     servers within each reservation in real time.
//
// This package is the public façade: it wires the substrates into a System
// and re-exports the domain types a user needs. See the examples directory
// for runnable scenarios and DESIGN.md for the system inventory.
package ras

import (
	"context"
	"fmt"

	"ras/internal/allocator"
	"ras/internal/backend"
	"ras/internal/broker"
	"ras/internal/greedy"
	"ras/internal/hardware"
	"ras/internal/health"
	"ras/internal/localsearch"
	"ras/internal/mover"
	"ras/internal/reservation"
	"ras/internal/sim"
	"ras/internal/solver"
	"ras/internal/topology"
)

// Re-exported domain types. The internal packages remain the source of
// truth; these aliases form the public API surface.
type (
	// Region is the physical inventory of datacenters, MSBs, racks, and
	// servers RAS allocates over.
	Region = topology.Region
	// RegionSpec parameterizes the synthetic region generator.
	RegionSpec = topology.GenSpec
	// ServerID identifies a server within a region.
	ServerID = topology.ServerID
	// Reservation is a logical cluster with guaranteed capacity.
	Reservation = reservation.Reservation
	// ReservationID identifies a reservation.
	ReservationID = reservation.ID
	// Policy captures a reservation's placement requirements.
	Policy = reservation.Policy
	// Class is a service class with distinct hardware affinity.
	Class = hardware.Class
	// SolverConfig tunes the async solver (the MIP backend).
	SolverConfig = solver.Config
	// LocalSearchConfig tunes the local-search backend.
	LocalSearchConfig = localsearch.Config
	// SolveResult is the backend-independent outcome of one
	// continuous-optimization round. Backend detail (phase stats, search
	// steps) is carried in its MIP / LocalSearch fields.
	SolveResult = backend.Result
	// SolveStatus classifies a solve outcome.
	SolveStatus = backend.Status
	// ContainerID identifies a container placed by the allocator.
	ContainerID = allocator.ContainerID
	// HealthConfig sets failure-injection rates.
	HealthConfig = health.Config
	// Clock is virtual time in seconds since the simulation epoch.
	Clock = sim.Time
)

// Re-exported service classes.
const (
	DataStore = hardware.DataStore
	Feed1     = hardware.Feed1
	Feed2     = hardware.Feed2
	Web       = hardware.Web
	FleetAvg  = hardware.FleetAvg
	BatchML   = hardware.BatchML
)

// Special reservation IDs.
const (
	// Unassigned marks a server in the regional free pool.
	Unassigned = reservation.Unassigned
	// SharedBuffer marks a server in the shared random-failure buffer.
	SharedBuffer = reservation.SharedBuffer
)

// Solve statuses, re-exported from the backend layer.
const (
	SolveOptimal    = backend.StatusOptimal
	SolveFeasible   = backend.StatusFeasible
	SolveCancelled  = backend.StatusCancelled
	SolveNoSolution = backend.StatusNoSolution
)

// Backends lists the registered solver backends selectable via
// Options.Backend or System.SolveWith ("mip" and "localsearch" by default).
func Backends() []string { return backend.Names() }

// NewRegion generates a synthetic region from the spec.
func NewRegion(spec RegionSpec) (*Region, error) { return topology.Generate(spec) }

// DefaultPolicy returns the placement policy used when none is specified.
func DefaultPolicy() Policy { return reservation.DefaultPolicy() }

// Options configures a System.
type Options struct {
	// Backend names the optimization backend Solve uses: "mip" (default)
	// or "localsearch", or any name registered with the backend registry.
	Backend string
	// Solver tunes the async solver (MIP backend); the zero value selects
	// defaults.
	Solver SolverConfig
	// LocalSearch tunes the local-search backend; the zero value selects
	// defaults.
	LocalSearch LocalSearchConfig
	// Health sets failure-injection rates; the zero value selects
	// health.DefaultConfig().
	Health *HealthConfig
	// StackingUnits is the per-server container stacking capacity. Zero
	// means 8.
	StackingUnits int
	// Workers caps each solve round's parallelism (branch-and-bound
	// workers or local-search starts). Zero means runtime.NumCPU(); 1
	// forces the serial engines. See backend.Options.Workers.
	Workers int
	// Partitions is the pop backend's sub-region count k. Zero means the
	// backend default; other backends ignore it. See
	// backend.Options.Partitions.
	Partitions int
	// Greedy switches server assignment to the Twine-greedy baseline
	// (paper §1.1) instead of the RAS solver. Used for baseline
	// comparisons (Figures 12, 14, 15).
	Greedy bool
}

// System is a fully wired two-level RAS deployment over one region: broker,
// health-check service, async solver, online mover, and container
// allocator.
type System struct {
	region *topology.Region
	broker *broker.Broker
	store  *reservation.Store
	health *health.Service
	mover  *mover.Mover
	alloc  *allocator.Allocator
	greedy *greedy.Assigner

	opts      Options
	lastSolve *SolveResult
	// warm is the cross-round warm-start state the last solve exported
	// (backend.Result.Warm): the MIP root bases and/or the local-search
	// assignment. Each SolveWith passes it back in so consecutive rounds
	// amortize solver work the way the paper's continuous loop does; a
	// problem whose shape drifted falls back to a cold solve inside the
	// backend, so the round's outcome is never at risk.
	warm *backend.WarmState
	// lastStatesVersion / lastStoreVersion identify the snapshots the last
	// solve consumed, and haveDelta records that they are valid — together
	// they let the next round hand the solver a Delta (broker journal plus
	// capacity-request log since then) so it can patch its cached phase
	// models instead of rebuilding them.
	lastStatesVersion uint64
	lastStoreVersion  int
	haveDelta         bool
}

// NewSystem wires a System over the region.
func NewSystem(region *Region, opts Options) *System {
	b := broker.New(region)
	store := reservation.NewStore()
	hcfg := health.DefaultConfig()
	if opts.Health != nil {
		hcfg = *opts.Health
	}
	al := allocator.New(b, opts.StackingUnits)
	mv := mover.New(b, store, al)
	s := &System{
		region: region,
		broker: b,
		store:  store,
		health: health.New(b, hcfg),
		mover:  mv,
		alloc:  al,
		greedy: greedy.New(b),
		opts:   opts,
	}
	// The online mover subscribes to unavailability events (Figure 6
	// step 7) and provides replacement servers within a minute.
	b.Subscribe(func(ev broker.Event) { mv.HandleFailure(ev, ev.Time) })
	return s
}

// Accessors for the wired components (read-mostly; the components' own
// methods are safe for concurrent use).

// Region returns the physical topology.
func (s *System) Region() *Region { return s.region }

// Broker returns the resource broker.
func (s *System) Broker() *broker.Broker { return s.broker }

// Reservations returns the reservation store (the Capacity Portal state).
func (s *System) Reservations() *reservation.Store { return s.store }

// Health returns the health-check service / failure injector.
func (s *System) Health() *health.Service { return s.health }

// Mover returns the online mover.
func (s *System) Mover() *mover.Mover { return s.mover }

// Allocator returns the container allocator.
func (s *System) Allocator() *allocator.Allocator { return s.alloc }

// CreateReservation registers a capacity request and returns its ID. The
// capacity materializes at the next Solve (or immediately under the greedy
// baseline).
func (s *System) CreateReservation(r Reservation) (ReservationID, error) {
	id, err := s.store.Create(r)
	if err != nil {
		return 0, err
	}
	if s.opts.Greedy && !r.Elastic {
		rr, _ := s.store.Get(id)
		s.greedy.Fulfill(&rr)
	}
	return id, nil
}

// ResizeReservation changes a reservation's requested RRUs.
func (s *System) ResizeReservation(id ReservationID, rrus float64) error {
	if err := s.store.Resize(id, rrus); err != nil {
		return err
	}
	if s.opts.Greedy {
		rr, _ := s.store.Get(id)
		s.greedy.Fulfill(&rr)
		s.greedy.Release(&rr)
	}
	return nil
}

// DeleteReservation removes a reservation; its servers return to the free
// pool at the next Solve.
func (s *System) DeleteReservation(id ReservationID) error { return s.store.Delete(id) }

// Solve runs one continuous-optimization round (Figure 6 steps 2–5) with
// the backend selected by Options.Backend: it snapshots the broker and
// reservation store, solves, persists the target bindings, and has the
// online mover execute them. ctx bounds the whole round; cancelling it
// aborts the running solve promptly and the round completes with the best
// incumbent assignment (Status SolveCancelled).
func (s *System) Solve(ctx context.Context, now Clock) (*SolveResult, error) {
	return s.SolveWith(ctx, now, s.opts.Backend)
}

// SolveWith is Solve with an explicit backend name ("mip", "localsearch",
// or any registered name; empty selects the default), letting one System
// mix backends across rounds — e.g. hourly MIP rounds with near-realtime
// local-search touch-ups in between (paper §6).
func (s *System) SolveWith(ctx context.Context, now Clock, backendName string) (*SolveResult, error) {
	if s.opts.Greedy {
		missing := s.greedy.FulfillAll(s.store.All())
		if missing > 0 {
			return nil, fmt.Errorf("ras: greedy baseline left %.1f RRUs unfulfilled", missing)
		}
		return &SolveResult{Backend: "greedy", Status: SolveFeasible}, nil
	}
	be, err := backend.New(backendName, backend.Config{
		Solver:      s.opts.Solver,
		LocalSearch: s.opts.LocalSearch,
	})
	if err != nil {
		return nil, err
	}
	storeVersion := s.store.Version()
	states, statesVersion := s.broker.SnapshotAt()
	in := solver.Input{
		Region:        s.region,
		Reservations:  s.store.All(),
		States:        states,
		StatesVersion: statesVersion,
	}
	// Broker-delta protocol: when a previous round established a snapshot
	// version, describe what changed since so the solver's incremental
	// build can patch its cached models. A journal gap (ChangedSince !ok)
	// means the change set is unknown — solve without a delta.
	if s.haveDelta {
		if changed, ok := s.broker.ChangedSince(s.lastStatesVersion); ok {
			in.Delta = &solver.Delta{
				Since:        s.lastStatesVersion,
				Servers:      changed,
				Reservations: s.store.ChangesSince(s.lastStoreVersion),
			}
		}
	}
	res, err := be.Solve(ctx, in, backend.Options{
		Workers: s.opts.Workers, Partitions: s.opts.Partitions, Warm: s.warm,
	})
	if err != nil {
		return nil, err
	}
	if res.Status != SolveNoSolution {
		// A cancelled round still persists: its incumbent can never regress
		// below the assignment the round started from (§3.5.1 softening).
		s.applyTargets(res.Targets, now)
	}
	s.lastSolve = res
	s.warm = res.Warm
	s.lastStatesVersion = statesVersion
	s.lastStoreVersion = storeVersion
	s.haveDelta = true
	return res, nil
}

// applyTargets persists solved target bindings to the broker and has the
// online mover execute them (Figure 6 steps 4–5) — the single persistence
// path shared by every backend.
func (s *System) applyTargets(tgts []reservation.ID, now Clock) {
	targets := make(map[topology.ServerID]reservation.ID, len(tgts))
	for i, tgt := range tgts {
		targets[topology.ServerID(i)] = tgt
	}
	s.broker.SetTargets(targets)
	s.mover.ApplyTargets(now)
}

// LastSolve returns the most recent solve result (nil before the first).
func (s *System) LastSolve() *SolveResult { return s.lastSolve }

// PlaceContainer starts one container of the given size in the reservation.
func (s *System) PlaceContainer(res ReservationID, job string, units int) (ContainerID, error) {
	return s.alloc.Place(res, job, units)
}

// StopContainer removes a container.
func (s *System) StopContainer(id ContainerID) error { return s.alloc.Stop(id) }

// LoanBuffersToElastic hands idle shared-buffer servers to the registered
// elastic reservations (§3.4) and returns the number of loans made.
func (s *System) LoanBuffersToElastic() int {
	var elastic []reservation.ID
	for _, r := range s.store.All() {
		if r.Elastic {
			elastic = append(elastic, r.ID)
		}
	}
	return s.mover.LoanIdleBuffers(elastic)
}

// GuaranteedRRUs reports how many RRUs of capacity the reservation's
// current servers deliver, and how many survive the loss of its most-loaded
// MSB (the capacity guarantee of expression 6).
func (s *System) GuaranteedRRUs(id ReservationID) (total, afterWorstMSB float64, err error) {
	r, err := s.store.Get(id)
	if err != nil {
		return 0, 0, err
	}
	perMSB := make([]float64, s.region.NumMSBs)
	for _, sid := range s.broker.ServersIn(id) {
		srv := s.region.Server(sid)
		v := hardware.RRU(s.region.Catalog.Type(srv.Type), r.Class)
		if r.CountBased {
			v = 1
		}
		if v <= 0 {
			continue
		}
		total += v
		perMSB[srv.MSB] += v
	}
	worst := 0.0
	for _, v := range perMSB {
		if v > worst {
			worst = v
		}
	}
	return total, total - worst, nil
}

// NewEngine returns a fresh discrete-event simulation engine for driving a
// System through virtual time.
func NewEngine() *sim.Engine { return sim.NewEngine() }
