module ras

go 1.22
